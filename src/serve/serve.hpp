// esthera::serve -- the multi-tenant filter serving runtime. The filters
// under core/ are single-owner objects driven by one bench loop; this
// layer is what the ROADMAP's "heavy traffic from millions of users"
// north star needs on top of them: a SessionManager owns many independent
// tracking sessions (each a DistributedParticleFilter with its own seed,
// model parameters, and optional telemetry/monitor), a batching scheduler
// coalesces pending observe(z, u) requests across sessions into bulk
// steps dispatched over one shared mcore::ThreadPool, admission control
// bounds the request queue and rejects with a structured reason instead
// of blocking or dropping silently, and session checkpoint/restore
// (serve/checkpoint.hpp) serializes a session to a versioned binary blob
// so idle sessions can be evicted and crashed servers recovered.
//
// Scheduling is earliest-deadline-first within a batch window, load-aware
// in the spirit of non-proportional allocation (see PAPERS.md): among
// requests with equal deadlines the costliest session dispatches first
// (longest-processing-time order), so the pool's dynamic chunking fills
// the stragglers' shadow with cheap sessions. Session cost comes from the
// session's own deterministic work counters when it carries telemetry,
// and from the closed-form per-step work model below otherwise -- both
// are machine-independent, so scheduling decisions are reproducible.
//
// Determinism: every session's filter runs its device inline (one worker)
// and touches only its own state, so with a fixed per-session seed the
// estimate() trajectory is bit-identical regardless of the manager's
// worker count, batch interleaving, or an intervening checkpoint/restore
// cycle -- test-enforced, like the telemetry/monitor bit-identity
// guarantees.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "core/config.hpp"

namespace esthera::monitor {
class HealthMonitor;
}

namespace esthera::serve {

/// Admission-control verdicts. kAccepted is the success value; everything
/// else is a structured rejection reason surfaced to the caller (and
/// counted under serve.rejected.* when telemetry is attached).
enum class Admission : std::uint8_t {
  kAccepted,        ///< request/session admitted
  kQueueFull,       ///< global pending-request queue at ServeConfig::max_queue
  kSessionBacklog,  ///< session at ServeConfig::max_pending_per_session
  /// No session with that id: closed, or never opened. NOT used for
  /// sessions a ServeCluster has evicted to its spill store -- those are
  /// still known to the cluster and are restored transparently on the
  /// next submit; only an unrecoverable restore surfaces (as
  /// kRestoreFailed, never as kUnknownSession).
  kUnknownSession,
  kDraining,        ///< manager is draining / shut down; not admitting work
  kSessionLimit,    ///< ServeConfig::max_sessions sessions already open
  /// Cluster overload control: the request's deadline cannot be met even
  /// if admitted now (EDF shedding; see ClusterConfig::shed_service_seconds).
  kDeadlineUnmeetable,
  /// Cluster fair admission: the tenant is over its fair share of queue
  /// capacity while other tenants have queued work.
  kTenantOverQuota,
  /// A spilled session's checkpoint blob failed to decode/restore
  /// (corrupt or unreadable spill file). Structured, never a crash; the
  /// blob is kept on disk for postmortem.
  kRestoreFailed,
};

/// Number of Admission enumerators (for reject-counter arrays and
/// flight-code registration loops).
inline constexpr int kAdmissionReasonCount = 9;

[[nodiscard]] const char* to_string(Admission a);

/// Serving-runtime configuration: queue bounds, batch shape, and the
/// shared telemetry sink for serve.* metrics.
struct ServeConfig {
  /// Global cap on queued (admitted, not yet executed) requests.
  std::size_t max_queue = 1024;
  /// Per-session cap on queued requests (backpressure for one hot tenant).
  std::size_t max_pending_per_session = 8;
  /// Most requests dispatched per run_batch() call (at most one per
  /// session per batch; a session's requests execute in submission order).
  std::size_t max_batch = 64;
  /// Cap on concurrently open sessions.
  std::size_t max_sessions = 1024;
  /// Worker threads of the shared scheduler pool (0 = auto, honouring
  /// ESTHERA_WORKERS / the --workers override).
  std::size_t workers = 0;
  /// Metrics sink for the serve.* catalogue (docs/OBSERVABILITY.md);
  /// null disables recording. Borrowed; must outlive the manager.
  telemetry::Telemetry* telemetry = nullptr;
  /// Manager-level health monitor: its emitted events feed the flight
  /// recorder, trigger the automatic flight dump, and appear in statusz.
  /// The manager installs its event callback (one manager per monitor);
  /// typically the same monitor is also attached to the sessions'
  /// FilterConfigs. Borrowed; must outlive the manager.
  monitor::HealthMonitor* monitor = nullptr;
  /// When non-empty, the flight-recorder ring is dumped (overwritten) to
  /// this path every time a monitor detector fires.
  std::string flight_dump_path;
  /// Mint a TraceContext per admitted request (request/queue_wait/batch/
  /// step spans + flight span events). Purely passive: per-session
  /// estimates are bit-identical either way (test-enforced). Trace spans
  /// are only recorded when `telemetry` is attached; flight events are
  /// always on.
  bool trace_requests = true;
  /// Seed for SplitMix64-derived trace ids: same (seed, ticket) -> same
  /// trace id, so replayed workloads trace identically.
  std::uint64_t trace_seed = 0x657374686572ull;  // "esther"
  /// Per-thread flight-recorder ring capacity, in events.
  std::size_t flight_events_per_thread = 4096;

  /// Throws std::invalid_argument on inconsistent bounds (zero queue or
  /// batch capacity, per-session cap above the global cap).
  void validate() const;
};

/// Deterministic per-step cost model of one distributed-filter round, in
/// abstract work units: the dominating closed-form tallies behind the
/// work.* counters (bitonic compare-exchanges, RNG draws, and per-particle
/// sampling work). Used for load-aware batch ordering when a session has
/// no live work counters of its own.
[[nodiscard]] std::uint64_t step_cost_model(const core::FilterConfig& cfg,
                                            std::size_t state_dim);

}  // namespace esthera::serve
