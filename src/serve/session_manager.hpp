// SessionManager: the multi-tenant serving runtime over
// DistributedParticleFilter (see serve.hpp for the subsystem overview).
//
// Request lifecycle (docs/ARCHITECTURE.md has the full diagram):
//
//   submit(id, z, u, deadline)
//     -> admission control: draining? session known? global queue below
//        max_queue? session backlog below max_pending_per_session?
//     -> rejected: SubmitResult carries the structured Admission reason
//     -> admitted: request enqueued FIFO on its session, ticket returned
//   run_batch()
//     -> selects <= max_batch sessions with pending work, earliest
//        deadline first (ties: higher-cost session first, then session id)
//     -> dispatches the batch over the shared ThreadPool; each entry steps
//        its session's filter exactly once, inline on one worker
//     -> completion: per-request latency into serve.request.latency,
//        batch size into serve.batch.size, sessions released
//   checkpoint/evict(id)
//     -> waits for the session to leave any in-flight batch, serializes
//        particle store + RNG stream + step index to a versioned blob
//   restore_session(model, config, blob)
//     -> decodes + validates the blob, opens a session that continues the
//        source trajectory bit-identically
//   drain()
//     -> stops admission (kDraining) and runs batches until empty
//
// Thread-safety: every public method may be called concurrently; internal
// state is guarded by one mutex, and filter stepping happens outside the
// lock with the session pinned by a busy flag. Stepping is the only
// mutation done off-lock, so checkpoint/estimate/close wait on the busy
// flag instead of racing the step.
//
// A session's own FilterConfig::telemetry/monitor (if any) is exercised
// from scheduler worker threads. Counters and gauges are atomic, but
// stage histograms are single-writer, so share one Telemetry instance
// across sessions only with a single-worker manager; otherwise give each
// session its own instance (or none).
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "core/distributed_pf.hpp"
#include "device/device.hpp"
#include "mcore/thread_pool.hpp"
#include "serve/checkpoint.hpp"
#include "serve/serve.hpp"
#include "telemetry/telemetry.hpp"

namespace esthera::serve {

template <typename Model>
  requires models::SystemModel<Model>
class SessionManager {
 public:
  using T = typename Model::Scalar;
  using Filter = core::DistributedParticleFilter<Model>;
  using SessionId = std::uint64_t;
  using Clock = std::chrono::steady_clock;

  /// No deadline: schedulable last, after every deadlined request.
  static constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

  struct OpenResult {
    Admission admission = Admission::kAccepted;
    SessionId id = 0;
    [[nodiscard]] bool ok() const { return admission == Admission::kAccepted; }
  };

  struct SubmitResult {
    Admission admission = Admission::kAccepted;
    std::uint64_t ticket = 0;
    [[nodiscard]] bool ok() const { return admission == Admission::kAccepted; }
  };

  struct BatchStats {
    std::size_t dispatched = 0;    ///< requests executed by this call
    std::size_t queued_after = 0;  ///< queue depth after the batch
    /// Tickets in dispatch (EDF) order; exposes the scheduling decision
    /// for tests and debugging.
    std::vector<std::uint64_t> tickets;
  };

  explicit SessionManager(ServeConfig cfg)
      : cfg_(cfg),
        pool_(cfg.workers == 0 ? mcore::ThreadPool::default_worker_count()
                               : cfg.workers),
        // One shared emulated device for every session, with an inline
        // (single-worker) pool: session steps parallelize across sessions
        // via pool_, never inside one session. This is what makes each
        // session's trajectory independent of the manager's worker count.
        device_(std::make_shared<device::Device>(1)) {
    cfg_.validate();
    if (cfg_.telemetry != nullptr) {
      auto& reg = cfg_.telemetry->registry;
      cnt_accepted_ = &reg.counter("serve.requests.accepted");
      cnt_completed_ = &reg.counter("serve.requests.completed");
      cnt_rejected_[static_cast<int>(Admission::kQueueFull)] =
          &reg.counter("serve.rejected.queue_full");
      cnt_rejected_[static_cast<int>(Admission::kSessionBacklog)] =
          &reg.counter("serve.rejected.session_backlog");
      cnt_rejected_[static_cast<int>(Admission::kUnknownSession)] =
          &reg.counter("serve.rejected.unknown_session");
      cnt_rejected_[static_cast<int>(Admission::kDraining)] =
          &reg.counter("serve.rejected.draining");
      cnt_rejected_[static_cast<int>(Admission::kSessionLimit)] =
          &reg.counter("serve.rejected.session_limit");
      cnt_batches_ = &reg.counter("serve.batches");
      cnt_opened_ = &reg.counter("serve.sessions.opened");
      cnt_closed_ = &reg.counter("serve.sessions.closed");
      cnt_evicted_ = &reg.counter("serve.sessions.evicted");
      cnt_restored_ = &reg.counter("serve.sessions.restored");
      cnt_checkpoints_ = &reg.counter("serve.checkpoints");
      gauge_queue_ = &reg.gauge("serve.queue.depth");
      gauge_sessions_ = &reg.gauge("serve.sessions.open");
      gauge_ckpt_bytes_ = &reg.gauge("serve.checkpoint.bytes");
      hist_latency_ = &reg.histogram("serve.request.latency");
      hist_batch_ = &reg.histogram("serve.batch.size");
    }
  }

  ~SessionManager() = default;
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  [[nodiscard]] const ServeConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t worker_count() const { return pool_.worker_count(); }

  /// Opens a session running `model` under `fcfg` (per-session seed, shape,
  /// telemetry, monitor all come from `fcfg`). The filter runs on the
  /// manager's shared single-worker device regardless of `fcfg.workers`.
  [[nodiscard]] OpenResult open_session(Model model, core::FilterConfig fcfg) {
    std::unique_lock lock(mutex_);
    if (const Admission a = admit_session_locked(); a != Admission::kAccepted) {
      return {note_reject(a), 0};
    }
    return insert_session_locked(
        std::make_unique<Filter>(std::move(model), fcfg, device_), fcfg,
        cnt_opened_);
  }

  /// Opens a session continuing the trajectory serialized in `blob`
  /// (produced by checkpoint()/evict()). `model` and `fcfg` must match the
  /// source session: the blob validates shape, scalar width, and PRNG core
  /// and throws CheckpointError / std::invalid_argument on any mismatch or
  /// corruption. The restored session's next step is bit-identical to the
  /// step the source session would have taken.
  [[nodiscard]] OpenResult restore_session(Model model, core::FilterConfig fcfg,
                                           std::span<const std::uint8_t> blob) {
    const core::FilterState<T> state = decode_checkpoint<T>(blob);
    std::unique_lock lock(mutex_);
    if (const Admission a = admit_session_locked(); a != Admission::kAccepted) {
      return {note_reject(a), 0};
    }
    auto filter = std::make_unique<Filter>(std::move(model), fcfg, device_);
    filter->import_state(state);
    return insert_session_locked(std::move(filter), fcfg, cnt_restored_);
  }

  /// Closes a session, dropping any requests still queued on it. Returns
  /// false when the id is unknown. Blocks while the session is in flight.
  bool close_session(SessionId id) {
    std::unique_lock lock(mutex_);
    auto it = wait_idle_locked(lock, id);
    if (it == sessions_.end()) return false;
    queue_size_ -= it->second.pending.size();
    sessions_.erase(it);
    if (cnt_closed_) cnt_closed_->add(1);
    publish_gauges_locked();
    return true;
  }

  /// Serializes a session to a versioned checkpoint blob (the session
  /// stays open). std::nullopt when the id is unknown. Blocks while the
  /// session is in flight so the snapshot is step-boundary consistent.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> checkpoint(SessionId id) {
    std::unique_lock lock(mutex_);
    auto it = wait_idle_locked(lock, id);
    if (it == sessions_.end()) return std::nullopt;
    auto blob = encode_checkpoint<T>(it->second.filter->export_state());
    if (cnt_checkpoints_) cnt_checkpoints_->add(1);
    if (gauge_ckpt_bytes_) gauge_ckpt_bytes_->set(static_cast<double>(blob.size()));
    return blob;
  }

  /// checkpoint() + close_session(): serializes the session and removes it
  /// (idle-session eviction). Queued requests on the session are dropped --
  /// evict idle sessions. std::nullopt when the id is unknown.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> evict(SessionId id) {
    std::unique_lock lock(mutex_);
    auto it = wait_idle_locked(lock, id);
    if (it == sessions_.end()) return std::nullopt;
    auto blob = encode_checkpoint<T>(it->second.filter->export_state());
    if (cnt_checkpoints_) cnt_checkpoints_->add(1);
    if (gauge_ckpt_bytes_) gauge_ckpt_bytes_->set(static_cast<double>(blob.size()));
    queue_size_ -= it->second.pending.size();
    sessions_.erase(it);
    if (cnt_evicted_) cnt_evicted_->add(1);
    publish_gauges_locked();
    return blob;
  }

  /// Admits one observe(z, u) request for session `id`. `deadline` is any
  /// monotone urgency value (smaller = sooner; e.g. seconds since start);
  /// kNoDeadline schedules after all deadlined work (NaN is normalized to
  /// kNoDeadline). On rejection the
  /// structured reason comes back in SubmitResult -- the call never blocks
  /// and never drops silently.
  [[nodiscard]] SubmitResult submit(SessionId id, std::span<const T> z,
                                    std::span<const T> u = {},
                                    double deadline = kNoDeadline) {
    // A NaN deadline would break the strict weak ordering of the EDF sort
    // comparator (UB in std::sort); treat it as "no deadline".
    if (std::isnan(deadline)) deadline = kNoDeadline;
    std::unique_lock lock(mutex_);
    if (draining_) return rejected(Admission::kDraining);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return rejected(Admission::kUnknownSession);
    if (queue_size_ >= cfg_.max_queue) return rejected(Admission::kQueueFull);
    if (it->second.pending.size() >= cfg_.max_pending_per_session) {
      return rejected(Admission::kSessionBacklog);
    }
    Request req;
    req.ticket = next_ticket_++;
    req.deadline = deadline;
    req.z.assign(z.begin(), z.end());
    req.u.assign(u.begin(), u.end());
    req.enqueued = Clock::now();
    it->second.pending.push_back(std::move(req));
    ++queue_size_;
    if (cnt_accepted_) cnt_accepted_->add(1);
    publish_gauges_locked();
    return {Admission::kAccepted, it->second.pending.back().ticket};
  }

  /// Dispatches one batch: up to max_batch pending requests (at most one
  /// per session, sessions' requests stay FIFO), earliest deadline first,
  /// ties broken by descending session cost then ascending session id, all
  /// stepped concurrently over the shared pool. Returns what was
  /// dispatched. Safe to call from several threads; a session never
  /// appears in two batches at once.
  BatchStats run_batch() {
    struct Entry {
      SessionState* session = nullptr;
      Request req;
    };
    std::vector<Entry> batch;
    BatchStats stats;
    {
      std::unique_lock lock(mutex_);
      std::vector<SessionState*> ready;
      ready.reserve(sessions_.size());
      for (auto& [id, s] : sessions_) {
        if (!s.busy && !s.pending.empty()) ready.push_back(&s);
      }
      std::sort(ready.begin(), ready.end(),
                [](const SessionState* a, const SessionState* b) {
                  const double da = a->pending.front().deadline;
                  const double db = b->pending.front().deadline;
                  if (da != db) return da < db;
                  if (a->cost != b->cost) return a->cost > b->cost;
                  return a->id < b->id;
                });
      if (ready.size() > cfg_.max_batch) ready.resize(cfg_.max_batch);
      batch.reserve(ready.size());
      for (SessionState* s : ready) {
        s->busy = true;
        batch.push_back({s, std::move(s->pending.front())});
        s->pending.pop_front();
        --queue_size_;
        stats.tickets.push_back(batch.back().req.ticket);
      }
      stats.dispatched = batch.size();
      stats.queued_after = queue_size_;
      publish_gauges_locked();
    }
    if (batch.empty()) return stats;
    pool_.run(batch.size(), [&](std::size_t i, std::size_t /*worker*/) {
      Entry& e = batch[i];
      e.session->filter->step(e.req.z, e.req.u);
    });
    {
      std::unique_lock lock(mutex_);
      const auto now = Clock::now();
      for (Entry& e : batch) {
        e.session->busy = false;
        ++e.session->completed;
        if (e.session->work_cmpex != nullptr) {
          const std::uint64_t total = e.session->work_cmpex->value() +
                                      e.session->work_rng->value() -
                                      e.session->work_base;
          e.session->cost = total / e.session->completed;
        }
        if (hist_latency_) {
          hist_latency_->record(
              std::chrono::duration<double>(now - e.req.enqueued).count());
        }
      }
      if (cnt_completed_) cnt_completed_->add(batch.size());
      if (cnt_batches_) cnt_batches_->add(1);
      if (hist_batch_) hist_batch_->record(static_cast<double>(batch.size()));
      stats.queued_after = queue_size_;
      idle_cv_.notify_all();
    }
    return stats;
  }

  /// Graceful shutdown: stops admitting (submits reject with kDraining)
  /// and runs batches until every already-admitted request has executed.
  void drain() {
    {
      std::unique_lock lock(mutex_);
      draining_ = true;
    }
    for (;;) {
      const BatchStats stats = run_batch();
      std::unique_lock lock(mutex_);
      if (queue_size_ == 0) return;
      if (stats.dispatched == 0) {
        // Every pending request sits on a session busy in another
        // thread's in-flight batch: sleep until a batch completes
        // (idle_cv_ is notified then) instead of spinning. The timeout
        // bounds the wait in case the notify races this wait.
        idle_cv_.wait_for(lock, std::chrono::milliseconds(1));
      }
    }
  }

  [[nodiscard]] bool draining() const {
    std::unique_lock lock(mutex_);
    return draining_;
  }

  [[nodiscard]] std::size_t queue_depth() const {
    std::unique_lock lock(mutex_);
    return queue_size_;
  }

  [[nodiscard]] std::size_t session_count() const {
    std::unique_lock lock(mutex_);
    return sessions_.size();
  }

  /// Pending requests queued on one session; nullopt for unknown ids.
  [[nodiscard]] std::optional<std::size_t> pending(SessionId id) const {
    std::unique_lock lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return std::nullopt;
    return it->second.pending.size();
  }

  /// Copy of the session's current estimate (waits out an in-flight step);
  /// nullopt for unknown ids.
  [[nodiscard]] std::optional<std::vector<T>> estimate(SessionId id) {
    std::unique_lock lock(mutex_);
    auto it = wait_idle_locked(lock, id);
    if (it == sessions_.end()) return std::nullopt;
    const auto est = it->second.filter->estimate();
    return std::vector<T>(est.begin(), est.end());
  }

  /// Completed filtering rounds of the session; nullopt for unknown ids.
  [[nodiscard]] std::optional<std::uint64_t> step_index(SessionId id) {
    std::unique_lock lock(mutex_);
    auto it = wait_idle_locked(lock, id);
    if (it == sessions_.end()) return std::nullopt;
    return it->second.filter->step_index();
  }

 private:
  struct Request {
    std::uint64_t ticket = 0;
    double deadline = kNoDeadline;
    std::vector<T> z;
    std::vector<T> u;
    Clock::time_point enqueued;
  };

  struct SessionState {
    SessionId id = 0;
    std::unique_ptr<Filter> filter;
    std::deque<Request> pending;
    bool busy = false;            ///< currently stepping inside a batch
    std::uint64_t completed = 0;  ///< requests executed
    std::uint64_t cost = 0;       ///< deterministic per-step work estimate
    /// Live work counters of the session's own telemetry (null without
    /// it); when present, `cost` tracks the measured per-step average of
    /// (compare-exchanges + RNG draws) since open instead of the static
    /// model. Both are machine-independent.
    const telemetry::Counter* work_cmpex = nullptr;
    const telemetry::Counter* work_rng = nullptr;
    std::uint64_t work_base = 0;  ///< counter sum when the session opened
  };

  [[nodiscard]] Admission admit_session_locked() const {
    if (draining_) return Admission::kDraining;
    if (sessions_.size() >= cfg_.max_sessions) return Admission::kSessionLimit;
    return Admission::kAccepted;
  }

  OpenResult insert_session_locked(std::unique_ptr<Filter> filter,
                                   const core::FilterConfig& fcfg,
                                   telemetry::Counter* opened_counter) {
    SessionState s;
    s.id = next_session_++;
    s.cost = step_cost_model(fcfg, filter->model().state_dim());
    if (fcfg.telemetry != nullptr) {
      auto& reg = fcfg.telemetry->registry;
      s.work_cmpex = &reg.counter("work.compare_exchanges");
      s.work_rng = &reg.counter("work.rng_draws");
      s.work_base = s.work_cmpex->value() + s.work_rng->value();
    }
    s.filter = std::move(filter);
    const SessionId id = s.id;
    sessions_.emplace(id, std::move(s));
    if (opened_counter) opened_counter->add(1);
    publish_gauges_locked();
    return {Admission::kAccepted, id};
  }

  Admission note_reject(Admission why) {
    if (telemetry::Counter* c = cnt_rejected_[static_cast<int>(why)]) c->add(1);
    return why;
  }

  SubmitResult rejected(Admission why) { return {note_reject(why), 0}; }

  using SessionIter = typename std::map<SessionId, SessionState>::iterator;

  /// Waits until session `id` is idle and returns a fresh iterator to it,
  /// or sessions_.end() when the id is unknown or was erased while
  /// waiting. The session is re-looked-up after every wakeup: two threads
  /// may wait on the same busy session (e.g. close racing evict on one
  /// id), and the first waiter to wake can erase the map entry -- caching
  /// a reference or iterator across the wait would dangle.
  SessionIter wait_idle_locked(std::unique_lock<std::mutex>& lock,
                               SessionId id) {
    for (;;) {
      auto it = sessions_.find(id);
      if (it == sessions_.end() || !it->second.busy) return it;
      idle_cv_.wait(lock);
    }
  }

  void publish_gauges_locked() {
    if (gauge_queue_) gauge_queue_->set(static_cast<double>(queue_size_));
    if (gauge_sessions_) gauge_sessions_->set(static_cast<double>(sessions_.size()));
  }

  ServeConfig cfg_;
  mcore::ThreadPool pool_;
  std::shared_ptr<device::Device> device_;
  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::map<SessionId, SessionState> sessions_;
  std::size_t queue_size_ = 0;
  bool draining_ = false;
  SessionId next_session_ = 1;
  std::uint64_t next_ticket_ = 1;
  // Cached serve.* metrics (null without telemetry).
  telemetry::Counter* cnt_accepted_ = nullptr;
  telemetry::Counter* cnt_completed_ = nullptr;
  telemetry::Counter* cnt_rejected_[6] = {};
  telemetry::Counter* cnt_batches_ = nullptr;
  telemetry::Counter* cnt_opened_ = nullptr;
  telemetry::Counter* cnt_closed_ = nullptr;
  telemetry::Counter* cnt_evicted_ = nullptr;
  telemetry::Counter* cnt_restored_ = nullptr;
  telemetry::Counter* cnt_checkpoints_ = nullptr;
  telemetry::Gauge* gauge_queue_ = nullptr;
  telemetry::Gauge* gauge_sessions_ = nullptr;
  telemetry::Gauge* gauge_ckpt_bytes_ = nullptr;
  telemetry::LatencyHistogram* hist_latency_ = nullptr;
  telemetry::LatencyHistogram* hist_batch_ = nullptr;
};

/// Background scheduler: calls run_batch() in a loop, sleeping for the
/// batch window after each pass so concurrent submits coalesce into one
/// batch. stop() (also run by the destructor) joins the thread and then
/// drains the manager -- admitted requests always execute; later submits
/// reject with kDraining.
template <typename Model>
class BatchLoop {
 public:
  BatchLoop(SessionManager<Model>& manager, std::chrono::microseconds window)
      : manager_(manager), window_(window), thread_([this] { loop(); }) {}

  ~BatchLoop() { stop(); }
  BatchLoop(const BatchLoop&) = delete;
  BatchLoop& operator=(const BatchLoop&) = delete;

  /// Idempotent: stops the scheduler thread and drains remaining work.
  void stop() {
    stopping_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
    manager_.drain();
  }

 private:
  void loop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
      manager_.run_batch();
      std::this_thread::sleep_for(window_);
    }
  }

  SessionManager<Model>& manager_;
  std::chrono::microseconds window_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace esthera::serve
