// Serving-runtime tests: checkpoint round-trip bit-identity (including
// save -> destroy -> restore -> step through the SessionManager),
// structured rejection of truncated / corrupt / incompatible blobs,
// determinism under concurrency (fixed per-session seed => bit-identical
// estimates regardless of manager worker count, batch interleaving, or an
// intervening checkpoint/restore), admission control with every rejection
// reason, EDF batch ordering, the serve.* metric catalogue, and a
// concurrent submit/checkpoint/evict stress loop for TSan (plus a
// multi-waiter close/evict race on one busy session).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <thread>
#include <vector>

#include "serve/session_manager.hpp"
#include "sim/ground_truth.hpp"
#include "telemetry/telemetry.hpp"

namespace {

using namespace esthera;

using ArmModel = models::RobotArmModel<float>;
using ArmFilter = core::DistributedParticleFilter<ArmModel>;
using Manager = serve::SessionManager<ArmModel>;

core::FilterConfig small_config(std::uint64_t seed = 21) {
  core::FilterConfig cfg;
  cfg.particles_per_filter = 16;
  cfg.num_filters = 4;
  cfg.seed = seed;
  cfg.workers = 1;
  return cfg;
}

/// Deterministic observation stream: `steps` (z, u) pairs of one scenario.
struct Traffic {
  std::vector<std::vector<float>> z;
  std::vector<std::vector<float>> u;

  explicit Traffic(std::uint64_t scenario_seed, std::size_t steps) {
    sim::RobotArmScenario scenario;
    scenario.reset(scenario_seed);
    for (std::size_t k = 0; k < steps; ++k) {
      const auto step = scenario.advance();
      z.emplace_back(step.z.begin(), step.z.end());
      u.emplace_back(step.u.begin(), step.u.end());
    }
  }
};

ArmModel make_model(std::uint64_t scenario_seed) {
  sim::RobotArmScenario scenario;
  scenario.reset(scenario_seed);
  return scenario.make_model<float>();
}

std::vector<float> estimates_concat(ArmFilter& pf, const Traffic& traffic,
                                    std::size_t from, std::size_t to) {
  std::vector<float> out;
  for (std::size_t k = from; k < to; ++k) {
    pf.step(traffic.z[k], traffic.u[k]);
    const auto est = pf.estimate();
    out.insert(out.end(), est.begin(), est.end());
  }
  return out;
}

TEST(ServeCheckpoint, EncodeDecodeRoundTripIsBitIdentical) {
  const Traffic traffic(5, 8);
  ArmFilter pf(make_model(5), small_config());
  for (std::size_t k = 0; k < 5; ++k) pf.step(traffic.z[k], traffic.u[k]);

  const auto state = pf.export_state();
  const auto blob = serve::encode_checkpoint<float>(state);
  const auto decoded = serve::decode_checkpoint<float>(blob);
  EXPECT_EQ(serve::encode_checkpoint<float>(decoded), blob);
  EXPECT_EQ(decoded.step, state.step);
  EXPECT_EQ(decoded.state, state.state);
  EXPECT_EQ(decoded.log_weights, state.log_weights);
  EXPECT_EQ(decoded.rng.mt_words, state.rng.mt_words);
  EXPECT_EQ(serve::checkpoint_version(blob), serve::kCheckpointVersion);
}

TEST(ServeCheckpoint, SaveDestroyRestoreStepMatchesUninterruptedRun) {
  const Traffic traffic(6, 12);

  // Reference: one filter stepped straight through.
  ArmFilter reference(make_model(6), small_config());
  for (std::size_t k = 0; k < 4; ++k) reference.step(traffic.z[k], traffic.u[k]);
  const auto expected = estimates_concat(reference, traffic, 4, 12);

  // Subject: snapshot at step 4, destroy, restore into a new filter.
  std::vector<std::uint8_t> blob;
  {
    ArmFilter pf(make_model(6), small_config());
    for (std::size_t k = 0; k < 4; ++k) pf.step(traffic.z[k], traffic.u[k]);
    blob = serve::encode_checkpoint<float>(pf.export_state());
  }
  ArmFilter restored(make_model(6), small_config());
  restored.import_state(serve::decode_checkpoint<float>(blob));
  EXPECT_EQ(restored.step_index(), 4u);
  EXPECT_EQ(estimates_concat(restored, traffic, 4, 12), expected);
}

TEST(ServeCheckpoint, TruncatedBlobRejectedWithClearError) {
  ArmFilter pf(make_model(7), small_config());
  const auto blob = serve::encode_checkpoint<float>(pf.export_state());
  // Below the fixed header the reader reports truncation by name; past it
  // the checksum (over the full blob) catches the cut first and reports
  // corruption. Both are loud, structured refusals.
  for (const std::size_t keep : {std::size_t{3}, std::size_t{40}, std::size_t{100},
                                 blob.size() - 1}) {
    const std::vector<std::uint8_t> cut(blob.begin(),
                                        blob.begin() + static_cast<long>(keep));
    EXPECT_THROW(
        {
          try {
            (void)serve::decode_checkpoint<float>(cut);
          } catch (const serve::CheckpointError& e) {
            const std::string what = e.what();
            EXPECT_TRUE(what.find("truncated") != std::string::npos ||
                        what.find("corrupt") != std::string::npos)
                << "keep=" << keep << ": " << what;
            throw;
          }
        },
        serve::CheckpointError)
        << "keep=" << keep;
  }
}

TEST(ServeCheckpoint, CorruptBlobFailsChecksum) {
  ArmFilter pf(make_model(7), small_config());
  auto blob = serve::encode_checkpoint<float>(pf.export_state());
  blob[blob.size() / 2] ^= 0x40;
  EXPECT_THROW(
      {
        try {
          (void)serve::decode_checkpoint<float>(blob);
        } catch (const serve::CheckpointError& e) {
          EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
          throw;
        }
      },
      serve::CheckpointError);
}

TEST(ServeCheckpoint, VersionMismatchIsRefusedNotParsed) {
  ArmFilter pf(make_model(7), small_config());
  auto blob = serve::encode_checkpoint<float>(pf.export_state());
  blob[4] = 2;  // little-endian version field follows the 4-byte magic
  EXPECT_THROW(
      {
        try {
          (void)serve::decode_checkpoint<float>(blob);
        } catch (const serve::CheckpointError& e) {
          EXPECT_NE(std::string(e.what()).find("version 2"), std::string::npos);
          throw;
        }
      },
      serve::CheckpointError);
  EXPECT_THROW((void)serve::checkpoint_version(std::vector<std::uint8_t>{'X'}),
               serve::CheckpointError);
}

TEST(ServeCheckpoint, ScalarWidthMismatchIsRefused) {
  ArmFilter pf(make_model(7), small_config());
  const auto blob = serve::encode_checkpoint<float>(pf.export_state());
  EXPECT_THROW((void)serve::decode_checkpoint<double>(blob), serve::CheckpointError);
}

/// Same FNV-1a as the encoder: needed to re-sign blobs whose header
/// fields the tests below deliberately corrupt, so the corruption reaches
/// the extent guards instead of being caught by the checksum first.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void patch_u64_and_resign(std::vector<std::uint8_t>& blob, std::size_t offset,
                          std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    blob[offset + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(v >> (8 * i));
  }
  const std::size_t payload = blob.size() - 8;
  const std::uint64_t sum = fnv1a64(blob.data(), payload);
  for (int i = 0; i < 8; ++i) {
    blob[payload + static_cast<std::size_t>(i)] =
        static_cast<std::uint8_t>(sum >> (8 * i));
  }
}

TEST(ServeCheckpoint, OverflowingExtentFieldsAreRejectedNotAllocated) {
  ArmFilter pf(make_model(7), small_config());
  const auto blob = serve::encode_checkpoint<float>(pf.export_state());
  // Little-endian u64 header fields after magic/version/scalar/generator:
  // particles_per_filter at 16, num_filters at 24, state_dim at 32, rng
  // word count at 56. A value of 2^62 makes the old `field * 4` extent
  // guard wrap to zero and pass, reaching resize() with an astronomical
  // size -- it must be a CheckpointError, never length_error/bad_alloc.
  constexpr std::uint64_t kHuge = 1ull << 62;
  for (const std::size_t offset :
       {std::size_t{16}, std::size_t{24}, std::size_t{32}, std::size_t{56}}) {
    auto bad = blob;
    patch_u64_and_resign(bad, offset, kHuge);
    EXPECT_THROW((void)serve::decode_checkpoint<float>(bad),
                 serve::CheckpointError)
        << "field at offset " << offset;
  }
  // particles * filters wrapping the u64 product to zero must not pass.
  auto wrap = blob;
  patch_u64_and_resign(wrap, 16, 1ull << 32);
  patch_u64_and_resign(wrap, 24, 1ull << 32);
  EXPECT_THROW((void)serve::decode_checkpoint<float>(wrap),
               serve::CheckpointError);
}

TEST(ServeCheckpoint, ImportRejectsShapeMismatch) {
  ArmFilter pf(make_model(7), small_config());
  auto state = pf.export_state();
  state.particles_per_filter = 32;  // no longer matches this filter
  ArmFilter other(make_model(7), small_config());
  EXPECT_THROW(other.import_state(state), std::invalid_argument);
}

TEST(ServeConfig, ValidationRejectsInconsistentBounds) {
  serve::ServeConfig cfg;
  cfg.max_queue = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.max_pending_per_session = cfg.max_queue + 1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.max_batch = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = {};
  cfg.max_sessions = 0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  EXPECT_NO_THROW(serve::ServeConfig{}.validate());
}

TEST(ServeConfig, StepCostModelGrowsWithWork) {
  core::FilterConfig small = small_config();
  core::FilterConfig big_m = small;
  big_m.particles_per_filter *= 4;
  core::FilterConfig big_n = small;
  big_n.num_filters *= 4;
  EXPECT_GT(serve::step_cost_model(big_m, 3), serve::step_cost_model(small, 3));
  EXPECT_GT(serve::step_cost_model(big_n, 3), serve::step_cost_model(small, 3));
  EXPECT_GT(serve::step_cost_model(small, 6), serve::step_cost_model(small, 3));
}

/// Drives `sessions` tenants through a manager: submits their traffic in
/// round-robin `burst`-sized chunks and batches until done, then returns
/// each session's final estimate.
std::vector<std::vector<float>> serve_trajectories(std::size_t workers,
                                                   std::size_t max_batch,
                                                   std::size_t burst,
                                                   bool checkpoint_cycle) {
  constexpr std::size_t kSessions = 3;
  constexpr std::size_t kSteps = 10;
  serve::ServeConfig scfg;
  scfg.workers = workers;
  scfg.max_batch = max_batch;
  scfg.max_pending_per_session = kSteps;
  Manager mgr(scfg);

  std::vector<Traffic> traffic;
  std::vector<Manager::SessionId> ids;
  for (std::size_t s = 0; s < kSessions; ++s) {
    traffic.emplace_back(100 + s, kSteps);
    const auto opened =
        mgr.open_session(make_model(100 + s), small_config(500 + s));
    EXPECT_TRUE(opened.ok());
    ids.push_back(opened.id);
  }

  std::vector<std::size_t> next(kSessions, 0);
  std::size_t submitted = 0;
  bool cycled = false;
  while (submitted < kSessions * kSteps) {
    for (std::size_t s = 0; s < kSessions; ++s) {
      for (std::size_t b = 0; b < burst && next[s] < kSteps; ++b) {
        const std::size_t k = next[s]++;
        EXPECT_TRUE(mgr.submit(ids[s], traffic[s].z[k], traffic[s].u[k],
                               static_cast<double>(k))
                        .ok());
        ++submitted;
      }
    }
    while (mgr.run_batch().dispatched > 0) {
    }
    if (checkpoint_cycle && !cycled && submitted >= kSessions * kSteps / 2) {
      // Mid-run: evict session 1 and immediately restore it from the blob.
      cycled = true;
      const auto blob = mgr.evict(ids[1]);
      EXPECT_TRUE(blob.has_value());
      if (blob.has_value()) {
        const auto restored =
            mgr.restore_session(make_model(101), small_config(501), *blob);
        EXPECT_TRUE(restored.ok());
        if (restored.ok()) ids[1] = restored.id;
      }
    }
  }
  mgr.drain();

  std::vector<std::vector<float>> result;
  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_EQ(*mgr.step_index(ids[s]), kSteps);
    result.push_back(*mgr.estimate(ids[s]));
  }
  return result;
}

TEST(Serve, DeterministicAcrossWorkersBatchingAndRestore) {
  // Reference: each session's filter stepped directly, no manager at all.
  std::vector<std::vector<float>> reference;
  for (std::size_t s = 0; s < 3; ++s) {
    const Traffic traffic(100 + s, 10);
    ArmFilter pf(make_model(100 + s), small_config(500 + s));
    for (std::size_t k = 0; k < 10; ++k) pf.step(traffic.z[k], traffic.u[k]);
    const auto est = pf.estimate();
    reference.emplace_back(est.begin(), est.end());
  }
  EXPECT_EQ(serve_trajectories(1, 1, 1, false), reference);
  EXPECT_EQ(serve_trajectories(1, 8, 4, false), reference);
  EXPECT_EQ(serve_trajectories(4, 3, 2, false), reference);
  EXPECT_EQ(serve_trajectories(4, 8, 5, true), reference);
}

TEST(Serve, AdmissionRejectsWithStructuredReasons) {
  telemetry::Telemetry tel;
  serve::ServeConfig scfg;
  scfg.max_queue = 3;
  scfg.max_pending_per_session = 2;
  scfg.max_sessions = 2;
  scfg.workers = 1;
  scfg.telemetry = &tel;
  Manager mgr(scfg);
  const Traffic traffic(8, 6);

  const auto a = mgr.open_session(make_model(8), small_config(1));
  const auto b = mgr.open_session(make_model(8), small_config(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  const auto c = mgr.open_session(make_model(8), small_config(3));
  EXPECT_EQ(c.admission, serve::Admission::kSessionLimit);

  EXPECT_EQ(mgr.submit(999, traffic.z[0], traffic.u[0]).admission,
            serve::Admission::kUnknownSession);
  EXPECT_TRUE(mgr.submit(a.id, traffic.z[0], traffic.u[0]).ok());
  EXPECT_TRUE(mgr.submit(a.id, traffic.z[1], traffic.u[1]).ok());
  EXPECT_EQ(mgr.submit(a.id, traffic.z[2], traffic.u[2]).admission,
            serve::Admission::kSessionBacklog);
  EXPECT_TRUE(mgr.submit(b.id, traffic.z[0], traffic.u[0]).ok());
  EXPECT_EQ(mgr.submit(b.id, traffic.z[1], traffic.u[1]).admission,
            serve::Admission::kQueueFull);
  EXPECT_EQ(mgr.queue_depth(), 3u);

  EXPECT_STREQ(serve::to_string(serve::Admission::kQueueFull), "queue_full");
  EXPECT_STREQ(serve::to_string(serve::Admission::kAccepted), "accepted");

  // Drain executes everything already admitted, then rejects new work.
  mgr.drain();
  EXPECT_EQ(mgr.queue_depth(), 0u);
  EXPECT_EQ(*mgr.step_index(a.id), 2u);
  EXPECT_EQ(*mgr.step_index(b.id), 1u);
  EXPECT_EQ(mgr.submit(a.id, traffic.z[2], traffic.u[2]).admission,
            serve::Admission::kDraining);
  EXPECT_EQ(mgr.open_session(make_model(8), small_config(4)).admission,
            serve::Admission::kDraining);

  EXPECT_EQ(tel.registry.counter("serve.rejected.session_backlog").value(), 1u);
  EXPECT_EQ(tel.registry.counter("serve.rejected.queue_full").value(), 1u);
  EXPECT_EQ(tel.registry.counter("serve.rejected.unknown_session").value(), 1u);
  EXPECT_EQ(tel.registry.counter("serve.rejected.session_limit").value(), 1u);
  EXPECT_EQ(tel.registry.counter("serve.rejected.draining").value(), 2u);
  EXPECT_EQ(tel.registry.counter("serve.requests.accepted").value(), 3u);
  EXPECT_EQ(tel.registry.counter("serve.requests.completed").value(), 3u);
}

TEST(Serve, BatchOrderIsEdfWithCostAndIdTieBreaks) {
  serve::ServeConfig scfg;
  scfg.workers = 1;
  Manager mgr(scfg);
  const Traffic traffic(9, 4);

  // Session `big` costs more per step than the two small ones.
  core::FilterConfig big_cfg = small_config(11);
  big_cfg.particles_per_filter = 64;
  const auto small_a = mgr.open_session(make_model(9), small_config(12));
  const auto big = mgr.open_session(make_model(9), big_cfg);
  const auto small_b = mgr.open_session(make_model(9), small_config(13));

  // Deadlines: small_a late (3), big and small_b tied early (1).
  const auto t1 = mgr.submit(small_a.id, traffic.z[0], traffic.u[0], 3.0);
  const auto t2 = mgr.submit(big.id, traffic.z[0], traffic.u[0], 1.0);
  const auto t3 = mgr.submit(small_b.id, traffic.z[0], traffic.u[0], 1.0);
  ASSERT_TRUE(t1.ok() && t2.ok() && t3.ok());

  const auto stats = mgr.run_batch();
  ASSERT_EQ(stats.dispatched, 3u);
  // Earliest deadline first; within the tie the costlier session leads.
  EXPECT_EQ(stats.tickets,
            (std::vector<std::uint64_t>{t2.ticket, t3.ticket, t1.ticket}));

  // Equal deadline and equal cost: session id decides.
  const auto u1 = mgr.submit(small_b.id, traffic.z[1], traffic.u[1], 5.0);
  const auto u2 = mgr.submit(small_a.id, traffic.z[1], traffic.u[1], 5.0);
  const auto stats2 = mgr.run_batch();
  ASSERT_EQ(stats2.dispatched, 2u);
  EXPECT_EQ(stats2.tickets,
            (std::vector<std::uint64_t>{u2.ticket, u1.ticket}));
}

TEST(Serve, NanDeadlineIsTreatedAsNoDeadline) {
  // A NaN deadline would break the EDF comparator's strict weak ordering
  // (UB in std::sort); submit() normalizes it to kNoDeadline instead.
  serve::ServeConfig scfg;
  scfg.workers = 1;
  Manager mgr(scfg);
  const Traffic traffic(9, 2);

  const auto a = mgr.open_session(make_model(9), small_config(41));
  const auto b = mgr.open_session(make_model(9), small_config(42));
  const auto nan_req = mgr.submit(a.id, traffic.z[0], traffic.u[0],
                                  std::numeric_limits<double>::quiet_NaN());
  const auto dl_req = mgr.submit(b.id, traffic.z[0], traffic.u[0], 1.0);
  ASSERT_TRUE(nan_req.ok());
  ASSERT_TRUE(dl_req.ok());

  const auto stats = mgr.run_batch();
  ASSERT_EQ(stats.dispatched, 2u);
  EXPECT_EQ(stats.tickets,
            (std::vector<std::uint64_t>{dl_req.ticket, nan_req.ticket}));
}

TEST(Serve, MetricsCatalogueIsRecorded) {
  telemetry::Telemetry tel;
  serve::ServeConfig scfg;
  scfg.workers = 1;
  scfg.max_batch = 2;
  scfg.telemetry = &tel;
  Manager mgr(scfg);
  const Traffic traffic(10, 4);

  const auto a = mgr.open_session(make_model(10), small_config(31));
  const auto b = mgr.open_session(make_model(10), small_config(32));
  for (std::size_t k = 0; k < 2; ++k) {
    ASSERT_TRUE(mgr.submit(a.id, traffic.z[k], traffic.u[k]).ok());
    ASSERT_TRUE(mgr.submit(b.id, traffic.z[k], traffic.u[k]).ok());
  }
  while (mgr.run_batch().dispatched > 0) {
  }
  ASSERT_TRUE(mgr.checkpoint(a.id).has_value());
  ASSERT_TRUE(mgr.evict(b.id).has_value());
  EXPECT_TRUE(mgr.close_session(a.id));

  auto& reg = tel.registry;
  EXPECT_EQ(reg.counter("serve.sessions.opened").value(), 2u);
  EXPECT_EQ(reg.counter("serve.sessions.closed").value(), 1u);
  EXPECT_EQ(reg.counter("serve.sessions.evicted").value(), 1u);
  EXPECT_EQ(reg.counter("serve.checkpoints").value(), 2u);
  EXPECT_EQ(reg.counter("serve.requests.completed").value(), 4u);
  EXPECT_EQ(reg.counter("serve.batches").value(), 2u);
  EXPECT_EQ(reg.gauge("serve.sessions.open").value(), 0.0);
  EXPECT_EQ(reg.gauge("serve.queue.depth").value(), 0.0);
  EXPECT_GT(reg.gauge("serve.checkpoint.bytes").value(), 0.0);
  ASSERT_NE(reg.find_histogram("serve.request.latency"), nullptr);
  EXPECT_EQ(reg.find_histogram("serve.request.latency")->count(), 4u);
  ASSERT_NE(reg.find_histogram("serve.batch.size"), nullptr);
  EXPECT_EQ(reg.find_histogram("serve.batch.size")->count(), 2u);
}

// Concurrent submit / run_batch / checkpoint / evict+restore: the TSan CI
// job runs this to shake out scheduler races. Assertions are structural
// (no lost sessions, drain empties the queue); the determinism test above
// covers value correctness.
TEST(ServeStress, ConcurrentSubmitCheckpointEvict) {
  serve::ServeConfig scfg;
  scfg.workers = 2;
  scfg.max_queue = 64;
  scfg.max_pending_per_session = 4;
  Manager mgr(scfg);
  const Traffic traffic(12, 8);

  constexpr std::size_t kSessions = 4;
  std::vector<std::atomic<std::uint64_t>> ids(kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    const auto opened = mgr.open_session(make_model(12), small_config(700 + s));
    ASSERT_TRUE(opened.ok());
    ids[s].store(opened.id);
  }

  std::atomic<bool> stop{false};
  std::thread batcher([&] {
    while (!stop.load()) mgr.run_batch();
  });
  std::vector<std::thread> submitters;
  for (std::size_t t = 0; t < 2; ++t) {
    submitters.emplace_back([&, t] {
      for (std::size_t i = 0; i < 300; ++i) {
        const std::size_t s = (i + t) % kSessions;
        const std::size_t k = i % traffic.z.size();
        (void)mgr.submit(ids[s].load(), traffic.z[k], traffic.u[k],
                         static_cast<double>(i));
      }
    });
  }
  std::thread chaos([&] {
    for (std::size_t i = 0; i < 50; ++i) {
      (void)mgr.checkpoint(ids[0].load());
      const auto blob = mgr.evict(ids[1].load());
      if (blob.has_value()) {
        const auto restored =
            mgr.restore_session(make_model(12), small_config(701), *blob);
        ASSERT_TRUE(restored.ok());
        ids[1].store(restored.id);
      }
    }
  });
  for (auto& t : submitters) t.join();
  chaos.join();
  stop.store(true);
  batcher.join();
  mgr.drain();

  EXPECT_EQ(mgr.queue_depth(), 0u);
  EXPECT_EQ(mgr.session_count(), kSessions);
  for (std::size_t s = 0; s < kSessions; ++s) {
    EXPECT_TRUE(mgr.estimate(ids[s].load()).has_value());
  }
}

// Regression for the wait-idle use-after-free: several threads wait out
// the SAME busy session (close racing evict racing estimate on one id).
// The first waiter to wake erases the map entry, so the others must
// re-look-up the session instead of re-reading a cached reference --
// exactly one eraser may win, and the ASan/TSan CI jobs verify nobody
// touches the freed SessionState.
TEST(ServeStress, ConcurrentClosersOnOneBusySession) {
  const Traffic traffic(14, 1);
  for (int round = 0; round < 20; ++round) {
    serve::ServeConfig scfg;
    scfg.workers = 1;
    Manager mgr(scfg);
    core::FilterConfig fcfg = small_config(900 + static_cast<std::uint64_t>(round));
    fcfg.particles_per_filter = 256;  // widen the in-flight window
    const auto opened = mgr.open_session(make_model(14), fcfg);
    ASSERT_TRUE(opened.ok());
    ASSERT_TRUE(mgr.submit(opened.id, traffic.z[0], traffic.u[0]).ok());

    std::atomic<int> erased{0};
    std::thread batcher([&] { mgr.run_batch(); });
    std::thread closer([&] {
      if (mgr.close_session(opened.id)) erased.fetch_add(1);
    });
    std::thread evictor([&] {
      if (mgr.evict(opened.id).has_value()) erased.fetch_add(1);
    });
    std::thread observer([&] { (void)mgr.estimate(opened.id); });
    batcher.join();
    closer.join();
    evictor.join();
    observer.join();

    EXPECT_EQ(erased.load(), 1) << "round " << round;
    EXPECT_EQ(mgr.session_count(), 0u) << "round " << round;
  }
}

}  // namespace
