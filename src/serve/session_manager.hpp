// SessionManager: the multi-tenant serving runtime over
// DistributedParticleFilter (see serve.hpp for the subsystem overview).
//
// Request lifecycle (docs/ARCHITECTURE.md has the full diagram):
//
//   submit(id, z, u, deadline)
//     -> admission control: draining? session known? global queue below
//        max_queue? session backlog below max_pending_per_session?
//     -> rejected: SubmitResult carries the structured Admission reason
//     -> admitted: request enqueued FIFO on its session, ticket returned
//   run_batch()
//     -> selects <= max_batch sessions with pending work, earliest
//        deadline first (ties: higher-cost session first, then session id)
//     -> dispatches the batch over the shared ThreadPool; each entry steps
//        its session's filter exactly once, inline on one worker
//     -> completion: per-request latency into serve.request.latency,
//        batch size into serve.batch.size, sessions released
//   checkpoint/evict(id)
//     -> waits for the session to leave any in-flight batch, serializes
//        particle store + RNG stream + step index to a versioned blob
//   restore_session(model, config, blob)
//     -> decodes + validates the blob, opens a session that continues the
//        source trajectory bit-identically
//   drain()
//     -> stops admission (kDraining) and runs batches until empty
//
// Thread-safety: every public method may be called concurrently; internal
// state is guarded by one mutex, and filter stepping happens outside the
// lock with the session pinned by a busy flag. Stepping is the only
// mutation done off-lock, so checkpoint/estimate/close wait on the busy
// flag instead of racing the step.
//
// A session's own FilterConfig::telemetry/monitor (if any) is exercised
// from scheduler worker threads. Counters and gauges are atomic, but
// stage histograms are single-writer, so share one Telemetry instance
// across sessions only with a single-worker manager; otherwise give each
// session its own instance (or none).
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <fstream>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <ostream>
#include <span>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "core/distributed_pf.hpp"
#include "device/device.hpp"
#include "mcore/thread_pool.hpp"
#include "monitor/monitor.hpp"
#include "serve/checkpoint.hpp"
#include "serve/serve.hpp"
#include "telemetry/context.hpp"
#include "telemetry/flight_recorder.hpp"
#include "telemetry/json.hpp"
#include "telemetry/openmetrics.hpp"
#include "telemetry/telemetry.hpp"

namespace esthera::serve {

template <typename Model>
  requires models::SystemModel<Model>
class SessionManager {
 public:
  using T = typename Model::Scalar;
  using Filter = core::DistributedParticleFilter<Model>;
  using SessionId = std::uint64_t;
  using Clock = std::chrono::steady_clock;

  /// No deadline: schedulable last, after every deadlined request.
  static constexpr double kNoDeadline = std::numeric_limits<double>::infinity();

  struct OpenResult {
    Admission admission = Admission::kAccepted;
    SessionId id = 0;
    [[nodiscard]] bool ok() const { return admission == Admission::kAccepted; }
  };

  struct SubmitResult {
    Admission admission = Admission::kAccepted;
    std::uint64_t ticket = 0;
    /// The request's minted trace identity (inert when rejected or when
    /// ServeConfig::trace_requests is off). Lets callers log their own
    /// trace id and lets tests predict exemplar retention.
    telemetry::TraceContext trace;
    [[nodiscard]] bool ok() const { return admission == Admission::kAccepted; }
  };

  struct BatchStats {
    std::size_t dispatched = 0;    ///< requests executed by this call
    std::size_t queued_after = 0;  ///< queue depth after the batch
    /// Tickets in dispatch (EDF) order; exposes the scheduling decision
    /// for tests and debugging.
    std::vector<std::uint64_t> tickets;
  };

  explicit SessionManager(ServeConfig cfg)
      : cfg_(cfg),
        pool_(cfg.workers == 0 ? mcore::ThreadPool::default_worker_count()
                               : cfg.workers),
        // One shared emulated device for every session, with an inline
        // (single-worker) pool: session steps parallelize across sessions
        // via pool_, never inside one session. This is what makes each
        // session's trajectory independent of the manager's worker count.
        device_(std::make_shared<device::Device>(1)),
        flight_(cfg.flight_events_per_thread) {
    cfg_.validate();
    // Flight-recorder code table: every code recorded on the hot path is
    // a string literal; registering the addresses here lets dumps resolve
    // them without the recorder ever storing strings.
    for (const char* code :
         {"request", "queue_wait", "batch", "step", "prng",
          "sampling+weighting", "local sort", "global estimate", "exchange",
          "resampling"}) {
      flight_.register_code(code);
    }
    for (int a = 0; a < kAdmissionReasonCount; ++a) {
      flight_.register_code(to_string(static_cast<Admission>(a)));
    }
    for (const char* d :
         {"ess_collapse", "parent_starvation", "entropy_floor",
          "nonfinite_weights", "exchange_anomaly", "metropolis_bias",
          "monitor"}) {
      flight_.register_code(d);
    }
    if (cfg_.monitor != nullptr) {
      // Monitor hook: every emitted detector event lands in the flight
      // ring and (when configured) triggers the automatic ring dump.
      // Called from observing threads with the monitor's lock held; the
      // hook touches only the lock-free recorder and the dump mutex.
      cfg_.monitor->set_event_callback(
          [this](const monitor::Event& e) { on_monitor_event(e); });
    }
    if (cfg_.telemetry != nullptr) {
      auto& reg = cfg_.telemetry->registry;
      cnt_accepted_ = &reg.counter("serve.requests.accepted");
      cnt_completed_ = &reg.counter("serve.requests.completed");
      cnt_rejected_[static_cast<int>(Admission::kQueueFull)] =
          &reg.counter("serve.rejected.queue_full");
      cnt_rejected_[static_cast<int>(Admission::kSessionBacklog)] =
          &reg.counter("serve.rejected.session_backlog");
      cnt_rejected_[static_cast<int>(Admission::kUnknownSession)] =
          &reg.counter("serve.rejected.unknown_session");
      cnt_rejected_[static_cast<int>(Admission::kDraining)] =
          &reg.counter("serve.rejected.draining");
      cnt_rejected_[static_cast<int>(Admission::kSessionLimit)] =
          &reg.counter("serve.rejected.session_limit");
      cnt_batches_ = &reg.counter("serve.batches");
      cnt_opened_ = &reg.counter("serve.sessions.opened");
      cnt_closed_ = &reg.counter("serve.sessions.closed");
      cnt_evicted_ = &reg.counter("serve.sessions.evicted");
      cnt_restored_ = &reg.counter("serve.sessions.restored");
      cnt_checkpoints_ = &reg.counter("serve.checkpoints");
      gauge_queue_ = &reg.gauge("serve.queue.depth");
      gauge_sessions_ = &reg.gauge("serve.sessions.open");
      gauge_ckpt_bytes_ = &reg.gauge("serve.checkpoint.bytes");
      hist_latency_ = &reg.histogram("serve.request.latency");
      hist_batch_ = &reg.histogram("serve.batch.size");
      // Introspection gauges (notes-only in the regression gate: gauges
      // are never diffed, so these add no baseline churn).
      gauge_dropped_spans_ = &reg.gauge("trace.dropped_spans");
      gauge_flight_occupancy_ = &reg.gauge("flight.occupancy");
      gauge_flight_overwritten_ = &reg.gauge("flight.overwritten");
      // Hardware-counter attribution for request batches: one "serve.batch"
      // accumulator fed by a profile::Scope around each batch dispatch.
      // The pool captures the scope, so the steps each worker executes
      // accrue their hardware deltas here alongside the batch-size and
      // latency histograms.
      auto& prof = cfg_.telemetry->profile;
      reg.gauge("profile.mode").set(static_cast<double>(prof.mode()));
      reg.gauge("profile.unavailable")
          .set(prof.unavailable_reason().empty() ? 0.0 : 1.0);
      if (prof.enabled()) {
        prof_ = &prof;
        batch_accum_ = &prof.accumulator("serve.batch");
        gauge_batch_ipc_ = &reg.gauge("profile.serve.batch.ipc");
        gauge_batch_cpu_ns_ =
            &reg.gauge("profile.serve.batch.cpu_ns_per_request");
      }
    }
  }

  ~SessionManager() {
    // The monitor outlives the manager but the installed callback
    // captures `this`; detach it before any member is torn down.
    if (cfg_.monitor != nullptr) cfg_.monitor->set_event_callback({});
  }
  SessionManager(const SessionManager&) = delete;
  SessionManager& operator=(const SessionManager&) = delete;

  [[nodiscard]] const ServeConfig& config() const { return cfg_; }
  [[nodiscard]] std::size_t worker_count() const { return pool_.worker_count(); }

  /// Opens a session running `model` under `fcfg` (per-session seed, shape,
  /// telemetry, monitor all come from `fcfg`). The filter runs on the
  /// manager's shared single-worker device regardless of `fcfg.workers`.
  /// `tenant` is a free-form owner tag propagated into trace spans,
  /// flight events, and statusz (0 = untagged).
  [[nodiscard]] OpenResult open_session(Model model, core::FilterConfig fcfg,
                                        std::uint64_t tenant = 0) {
    std::unique_lock lock(mutex_);
    if (const Admission a = admit_session_locked(); a != Admission::kAccepted) {
      return {note_reject(a), 0};
    }
    return insert_session_locked(
        std::make_unique<Filter>(std::move(model), fcfg, device_), fcfg,
        cnt_opened_, tenant);
  }

  /// Opens a session continuing the trajectory serialized in `blob`
  /// (produced by checkpoint()/evict()). `model` and `fcfg` must match the
  /// source session: the blob validates shape, scalar width, and PRNG core
  /// and throws CheckpointError / std::invalid_argument on any mismatch or
  /// corruption. The restored session's next step is bit-identical to the
  /// step the source session would have taken.
  [[nodiscard]] OpenResult restore_session(Model model, core::FilterConfig fcfg,
                                           std::span<const std::uint8_t> blob,
                                           std::uint64_t tenant = 0) {
    const core::FilterState<T> state = decode_checkpoint<T>(blob);
    std::unique_lock lock(mutex_);
    if (const Admission a = admit_session_locked(); a != Admission::kAccepted) {
      return {note_reject(a), 0};
    }
    auto filter = std::make_unique<Filter>(std::move(model), fcfg, device_);
    filter->import_state(state);
    return insert_session_locked(std::move(filter), fcfg, cnt_restored_, tenant);
  }

  /// Closes a session, dropping any requests still queued on it. Returns
  /// false when the id is unknown. Blocks while the session is in flight.
  bool close_session(SessionId id) {
    std::unique_lock lock(mutex_);
    auto it = wait_idle_locked(lock, id);
    if (it == sessions_.end()) return false;
    queue_size_ -= it->second.pending.size();
    sessions_.erase(it);
    if (cnt_closed_) cnt_closed_->add(1);
    publish_gauges_locked();
    return true;
  }

  /// Serializes a session to a versioned checkpoint blob (the session
  /// stays open). std::nullopt when the id is unknown. Blocks while the
  /// session is in flight so the snapshot is step-boundary consistent.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> checkpoint(SessionId id) {
    std::unique_lock lock(mutex_);
    auto it = wait_idle_locked(lock, id);
    if (it == sessions_.end()) return std::nullopt;
    auto blob = encode_checkpoint<T>(it->second.filter->export_state());
    if (cnt_checkpoints_) cnt_checkpoints_->add(1);
    if (gauge_ckpt_bytes_) gauge_ckpt_bytes_->set(static_cast<double>(blob.size()));
    return blob;
  }

  /// checkpoint() + close_session(): serializes the session and removes it
  /// (idle-session eviction). Queued requests on the session are dropped --
  /// evict idle sessions. std::nullopt when the id is unknown.
  [[nodiscard]] std::optional<std::vector<std::uint8_t>> evict(SessionId id) {
    std::unique_lock lock(mutex_);
    auto it = wait_idle_locked(lock, id);
    if (it == sessions_.end()) return std::nullopt;
    auto blob = encode_checkpoint<T>(it->second.filter->export_state());
    if (cnt_checkpoints_) cnt_checkpoints_->add(1);
    if (gauge_ckpt_bytes_) gauge_ckpt_bytes_->set(static_cast<double>(blob.size()));
    queue_size_ -= it->second.pending.size();
    sessions_.erase(it);
    if (cnt_evicted_) cnt_evicted_->add(1);
    publish_gauges_locked();
    return blob;
  }

  /// Admits one observe(z, u) request for session `id`. `deadline` is any
  /// monotone urgency value (smaller = sooner; e.g. seconds since start);
  /// kNoDeadline schedules after all deadlined work (NaN is normalized to
  /// kNoDeadline). On rejection the
  /// structured reason comes back in SubmitResult -- the call never blocks
  /// and never drops silently.
  [[nodiscard]] SubmitResult submit(SessionId id, std::span<const T> z,
                                    std::span<const T> u = {},
                                    double deadline = kNoDeadline) {
    // A NaN deadline would break the strict weak ordering of the EDF sort
    // comparator (UB in std::sort); treat it as "no deadline".
    if (std::isnan(deadline)) deadline = kNoDeadline;
    std::unique_lock lock(mutex_);
    if (draining_) return rejected(Admission::kDraining);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return rejected(Admission::kUnknownSession);
    if (queue_size_ >= cfg_.max_queue) return rejected(Admission::kQueueFull);
    if (it->second.pending.size() >= cfg_.max_pending_per_session) {
      return rejected(Admission::kSessionBacklog);
    }
    Request req;
    req.ticket = next_ticket_++;
    req.deadline = deadline;
    req.z.assign(z.begin(), z.end());
    req.u.assign(u.begin(), u.end());
    req.enqueued = Clock::now();
    if (cfg_.trace_requests) {
      // Mint the request's trace identity: deterministic in (trace_seed,
      // ticket), so a replayed workload traces identically and tests can
      // predict exemplar trace ids.
      req.ctx = telemetry::TraceContext::mint(cfg_.trace_seed, req.ticket);
      req.ctx.session = id;
      req.ctx.tenant = it->second.tenant;
      req.ctx.track = static_cast<std::uint32_t>(id);
      req.ctx.flight = &flight_;
    }
    flight_.record(telemetry::FlightEventKind::kAdmission,
                   to_string(Admission::kAccepted), req.ctx.trace_id, id,
                   req.ticket);
    it->second.pending.push_back(std::move(req));
    ++queue_size_;
    if (cnt_accepted_) cnt_accepted_->add(1);
    publish_gauges_locked();
    const Request& queued = it->second.pending.back();
    return {Admission::kAccepted, queued.ticket, queued.ctx};
  }

  /// Dispatches one batch: up to max_batch pending requests (at most one
  /// per session, sessions' requests stay FIFO), earliest deadline first,
  /// ties broken by descending session cost then ascending session id, all
  /// stepped concurrently over the shared pool. Returns what was
  /// dispatched. Safe to call from several threads; a session never
  /// appears in two batches at once.
  BatchStats run_batch() {
    struct Entry {
      SessionState* session = nullptr;
      Request req;
      /// The request's batch-residency span context; the filter's round
      /// span parents under it, completing the request -> queue_wait /
      /// batch -> step -> kernels tree.
      telemetry::TraceContext bctx;
    };
    std::vector<Entry> batch;
    BatchStats stats;
    std::uint64_t batch_seq = 0;
    {
      std::unique_lock lock(mutex_);
      std::vector<SessionState*> ready;
      ready.reserve(sessions_.size());
      for (auto& [id, s] : sessions_) {
        if (!s.busy && !s.pending.empty()) ready.push_back(&s);
      }
      std::sort(ready.begin(), ready.end(),
                [](const SessionState* a, const SessionState* b) {
                  const double da = a->pending.front().deadline;
                  const double db = b->pending.front().deadline;
                  if (da != db) return da < db;
                  if (a->cost != b->cost) return a->cost > b->cost;
                  return a->id < b->id;
                });
      if (ready.size() > cfg_.max_batch) ready.resize(cfg_.max_batch);
      batch.reserve(ready.size());
      for (SessionState* s : ready) {
        s->busy = true;
        batch.push_back({s, std::move(s->pending.front()), {}});
        s->pending.pop_front();
        --queue_size_;
        stats.tickets.push_back(batch.back().req.ticket);
      }
      stats.dispatched = batch.size();
      stats.queued_after = queue_size_;
      if (!batch.empty()) {
        batch_seq = next_batch_++;
        ++in_flight_batches_;
      }
      publish_gauges_locked();
    }
    if (batch.empty()) return stats;
    const auto t_dispatch = Clock::now();
    telemetry::TraceRecorder* trace =
        cfg_.telemetry != nullptr ? &cfg_.telemetry->trace : nullptr;
    if (trace != nullptr) {
      for (Entry& e : batch) {
        if (!e.req.ctx) continue;
        // queue_wait: admission to batch selection, parented to the
        // request span (recorded at completion below).
        telemetry::TraceSpan qs;
        qs.name = "queue_wait";
        qs.ts_us = trace->us_since_epoch(e.req.enqueued);
        qs.dur_us = std::chrono::duration<double, std::micro>(
                        t_dispatch - e.req.enqueued)
                        .count();
        qs.track = e.req.ctx.track;
        qs.trace_id = e.req.ctx.trace_id;
        qs.span_id = telemetry::TraceContext::derive_span(e.req.ctx.span_id,
                                                          "queue_wait");
        qs.parent_span_id = e.req.ctx.span_id;
        qs.session = e.req.ctx.session;
        qs.tenant = e.req.ctx.tenant;
        trace->record_span(std::move(qs));
      }
    }
    flight_.record(telemetry::FlightEventKind::kSpanBegin, "batch", 0,
                   batch_seq, batch.size());
    {
      // Batch-level profiling scope: the pool captures it at dispatch, so
      // every worker's share of the batch accrues into "serve.batch".
      // Session filters with their own profilers nest stage scopes inside
      // and restore this share on exit.
      profile::Scope prof_scope(prof_, batch_accum_);
      pool_.run(batch.size(), [&](std::size_t i, std::size_t /*worker*/) {
        Entry& e = batch[i];
        if (e.req.ctx) {
          e.bctx = e.req.ctx.child("batch", batch_seq);
          e.session->filter->step(e.req.z, e.req.u, &e.bctx);
        } else {
          e.session->filter->step(e.req.z, e.req.u);
        }
      });
    }
    flight_.record(telemetry::FlightEventKind::kSpanEnd, "batch", 0,
                   batch_seq, batch.size());
    {
      std::unique_lock lock(mutex_);
      const auto now = Clock::now();
      for (Entry& e : batch) {
        e.session->busy = false;
        ++e.session->completed;
        if (e.session->work_cmpex != nullptr) {
          const std::uint64_t total = e.session->work_cmpex->value() +
                                      e.session->work_rng->value() -
                                      e.session->work_base;
          e.session->cost = total / e.session->completed;
        }
        // One latency value feeds the histogram sample, its exemplar, and
        // the request span's duration, so an exemplar's trace resolves to
        // a request span with the bit-identical duration.
        const double lat_us =
            std::chrono::duration<double, std::micro>(now - e.req.enqueued)
                .count();
        if (hist_latency_) {
          hist_latency_->record(lat_us * 1e-6, e.req.ctx.trace_id);
        }
        if (trace != nullptr && e.req.ctx) {
          telemetry::TraceSpan bs;  // batch residency: selection -> done
          bs.name = "batch";
          bs.ts_us = trace->us_since_epoch(t_dispatch);
          bs.dur_us =
              std::chrono::duration<double, std::micro>(now - t_dispatch)
                  .count();
          bs.step = batch_seq;
          bs.track = e.req.ctx.track;
          bs.trace_id = e.req.ctx.trace_id;
          bs.span_id = e.bctx.span_id;
          bs.parent_span_id = e.req.ctx.span_id;
          bs.session = e.req.ctx.session;
          bs.tenant = e.req.ctx.tenant;
          trace->record_span(std::move(bs));
          telemetry::TraceSpan rs;  // request root: admission -> done
          rs.name = "request";
          rs.ts_us = trace->us_since_epoch(e.req.enqueued);
          rs.dur_us = lat_us;
          rs.step = e.req.ticket;
          rs.track = e.req.ctx.track;
          rs.trace_id = e.req.ctx.trace_id;
          rs.span_id = e.req.ctx.span_id;
          rs.parent_span_id = 0;
          rs.session = e.req.ctx.session;
          rs.tenant = e.req.ctx.tenant;
          rs.deadline = e.req.deadline;
          trace->record_span(std::move(rs));
        }
      }
      if (cnt_completed_) cnt_completed_->add(batch.size());
      if (cnt_batches_) cnt_batches_->add(1);
      if (hist_batch_) hist_batch_->record(static_cast<double>(batch.size()));
      if (batch_accum_ != nullptr && cnt_completed_ != nullptr) {
        // Derived batch-profile gauges from the lifetime sums; per-request
        // normalization uses the completed-request counter updated above.
        const auto sums = batch_accum_->sums();
        const auto done = static_cast<double>(cnt_completed_->value());
        if (done > 0.0) gauge_batch_cpu_ns_->set(sums.task_clock_ns / done);
        if (sums.hardware_samples > 0) gauge_batch_ipc_->set(sums.ipc());
      }
      stats.queued_after = queue_size_;
      --in_flight_batches_;
      publish_gauges_locked();
      idle_cv_.notify_all();
    }
    return stats;
  }

  /// Graceful shutdown: stops admitting (submits reject with kDraining)
  /// and runs batches until every already-admitted request has executed.
  void drain() {
    {
      std::unique_lock lock(mutex_);
      draining_ = true;
    }
    for (;;) {
      const BatchStats stats = run_batch();
      std::unique_lock lock(mutex_);
      if (queue_size_ == 0) return;
      if (stats.dispatched == 0) {
        // Every pending request sits on a session busy in another
        // thread's in-flight batch: sleep until a batch completes
        // (idle_cv_ is notified then) instead of spinning. The timeout
        // bounds the wait in case the notify races this wait.
        idle_cv_.wait_for(lock, std::chrono::milliseconds(1));
      }
    }
  }

  [[nodiscard]] bool draining() const {
    std::unique_lock lock(mutex_);
    return draining_;
  }

  [[nodiscard]] std::size_t queue_depth() const {
    std::unique_lock lock(mutex_);
    return queue_size_;
  }

  [[nodiscard]] std::size_t session_count() const {
    std::unique_lock lock(mutex_);
    return sessions_.size();
  }

  /// Pending requests queued on one session; nullopt for unknown ids.
  [[nodiscard]] std::optional<std::size_t> pending(SessionId id) const {
    std::unique_lock lock(mutex_);
    auto it = sessions_.find(id);
    if (it == sessions_.end()) return std::nullopt;
    return it->second.pending.size();
  }

  /// Copy of the session's current estimate (waits out an in-flight step);
  /// nullopt for unknown ids.
  [[nodiscard]] std::optional<std::vector<T>> estimate(SessionId id) {
    std::unique_lock lock(mutex_);
    auto it = wait_idle_locked(lock, id);
    if (it == sessions_.end()) return std::nullopt;
    const auto est = it->second.filter->estimate();
    return std::vector<T>(est.begin(), est.end());
  }

  /// Completed filtering rounds of the session; nullopt for unknown ids.
  [[nodiscard]] std::optional<std::uint64_t> step_index(SessionId id) {
    std::unique_lock lock(mutex_);
    auto it = wait_idle_locked(lock, id);
    if (it == sessions_.end()) return std::nullopt;
    return it->second.filter->step_index();
  }

  /// The always-on flight recorder (read-side: occupancy, events, dumps).
  [[nodiscard]] const telemetry::FlightRecorder& flight() const {
    return flight_;
  }

  /// Dumps the flight ring as `esthera.flight/1` JSONL (on-demand path;
  /// the automatic path fires on monitor events, see ServeConfig).
  void dump_flight(std::ostream& os) const { flight_.dump_jsonl(os); }

  /// Copy of the manager's request-latency histogram, taken under the
  /// manager mutex so the buckets are consistent with batch completion
  /// (histograms are single-writer; an unlocked cross-thread read would
  /// race). Empty when the manager has no telemetry. This is what a
  /// ServeCluster merges into its cluster-wide latency view.
  [[nodiscard]] telemetry::LatencyHistogram latency_snapshot() const {
    std::unique_lock lock(mutex_);
    return hist_latency_ != nullptr ? *hist_latency_
                                    : telemetry::LatencyHistogram{};
  }

  /// Runs `fn` with the manager mutex held, excluding in-flight batch
  /// completions -- lets an owning ServeCluster read this manager's
  /// single-writer telemetry (histograms) race-free while aggregating
  /// cross-shard exposition documents.
  template <typename Fn>
  void with_export_lock(Fn&& fn) const {
    std::unique_lock lock(mutex_);
    fn();
  }

  /// Live introspection: one `esthera.statusz/1` JSON document with
  /// per-session state, queue depths, in-flight batches, latency
  /// quantiles, trace/flight occupancy, and recent monitor events.
  /// Non-blocking with respect to in-flight steps: busy sessions are
  /// reported from manager-owned state only (never reads a busy filter).
  void write_statusz(std::ostream& os) const {
    std::unique_lock lock(mutex_);
    telemetry::json::JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "esthera.statusz/1");
    w.kv("draining", draining_);
    w.kv("workers", static_cast<std::uint64_t>(pool_.worker_count()));
    w.kv("queue_depth", static_cast<std::uint64_t>(queue_size_));
    w.kv("sessions_open", static_cast<std::uint64_t>(sessions_.size()));
    w.kv("batches_in_flight", static_cast<std::uint64_t>(in_flight_batches_));
    w.key("sessions");
    w.begin_array();
    for (const auto& [id, s] : sessions_) {
      w.begin_object();
      w.kv("id", static_cast<std::uint64_t>(id));
      w.kv("tenant", s.tenant);
      w.kv("pending", static_cast<std::uint64_t>(s.pending.size()));
      w.kv("busy", s.busy);
      w.kv("completed", s.completed);
      w.kv("cost", s.cost);
      w.end_object();
    }
    w.end_array();
    if (hist_latency_ != nullptr) {
      // Histogram writes happen under this same mutex, so quantile reads
      // here are consistent.
      w.key("latency");
      w.begin_object();
      w.kv("count", hist_latency_->count());
      w.kv("p50", hist_latency_->quantile(0.50));
      w.kv("p95", hist_latency_->quantile(0.95));
      w.kv("p99", hist_latency_->quantile(0.99));
      w.end_object();
    }
    if (cnt_accepted_ != nullptr) {
      w.key("requests");
      w.begin_object();
      w.kv("accepted", cnt_accepted_->value());
      w.kv("completed", cnt_completed_->value());
      std::uint64_t rejected = 0;
      for (const telemetry::Counter* c : cnt_rejected_) {
        if (c != nullptr) rejected += c->value();
      }
      w.kv("rejected", rejected);
      w.end_object();
    }
    if (cfg_.telemetry != nullptr) {
      w.key("trace");
      w.begin_object();
      w.kv("spans",
           static_cast<std::uint64_t>(cfg_.telemetry->trace.span_count()));
      w.kv("dropped_spans", cfg_.telemetry->trace.dropped_spans());
      w.end_object();
      // Profiler identity + batch attribution: the mode is fixed at
      // telemetry construction, and a non-empty unavailable reason is the
      // structured signal that a hardware request degraded to software.
      const auto& prof = cfg_.telemetry->profile;
      w.key("profile");
      w.begin_object();
      w.kv("mode", profile::to_string(prof.mode()));
      if (!prof.unavailable_reason().empty()) {
        w.kv("unavailable", prof.unavailable_reason());
      }
      if (batch_accum_ != nullptr) {
        const auto sums = batch_accum_->sums();
        w.kv("batch_samples", sums.samples);
        w.kv("batch_cpu_ns", sums.task_clock_ns);
        if (sums.hardware_samples > 0) {
          w.kv("batch_ipc", sums.ipc());
          w.kv("batch_cycles", sums.cycles);
          w.kv("batch_cache_misses", sums.cache_misses);
        }
      }
      w.end_object();
    }
    w.key("flight");
    w.begin_object();
    w.kv("occupancy", static_cast<std::uint64_t>(flight_.occupancy()));
    w.kv("capacity", static_cast<std::uint64_t>(flight_.capacity()));
    w.kv("total", flight_.total_recorded());
    w.kv("overwritten", flight_.overwritten());
    w.kv("dropped_threads", flight_.dropped_threads());
    w.end_object();
    if (cfg_.monitor != nullptr) {
      // Lock order: manager mutex -> monitor mutex (the reverse path, the
      // monitor callback, touches only the lock-free flight recorder and
      // the dump mutex -- never the manager mutex -- so no cycle).
      w.key("monitor");
      w.begin_object();
      w.kv("events",
           static_cast<std::uint64_t>(cfg_.monitor->event_count()));
      w.kv("suppressed",
           static_cast<std::uint64_t>(cfg_.monitor->suppressed_count()));
      const auto events = cfg_.monitor->events();
      const std::size_t first = events.size() > 8 ? events.size() - 8 : 0;
      w.key("recent");
      w.begin_array();
      for (std::size_t i = first; i < events.size(); ++i) {
        const monitor::Event& e = events[i];
        w.begin_object();
        w.kv("detector", e.detector);
        w.kv("severity", monitor::to_string(e.severity));
        w.kv("step", static_cast<std::uint64_t>(e.step));
        if (e.group != monitor::HealthMonitor::kNoGroup) {
          w.kv("group", e.group);
        }
        w.kv("value", e.value);
        w.kv("threshold", e.threshold);
        w.end_object();
      }
      w.end_array();
      w.end_object();
    }
    w.end_object();
    os << '\n';
  }

  /// OpenMetrics text exposition of the manager's registry (counters,
  /// gauges, histograms with le buckets + exemplars) plus an
  /// esthera_profile info metric carrying the profiler mode and the
  /// structured unavailable reason. Scrape-ready: ends with "# EOF".
  /// Without telemetry the document is valid but empty.
  void write_openmetrics(std::ostream& os) const {
    telemetry::openmetrics::Writer w(os);
    if (cfg_.telemetry != nullptr) {
      // Histogram writes happen under this mutex, so bucket/count reads
      // here are consistent with each other.
      std::unique_lock lock(mutex_);
      const auto& prof = cfg_.telemetry->profile;
      w.info("profile", "hardware-counter profiler identity",
             {{"mode", profile::to_string(prof.mode())},
              {"unavailable", prof.unavailable_reason()}});
      telemetry::openmetrics::write_families(w, cfg_.telemetry->registry);
    }
    w.eof();
  }

 private:
  struct Request {
    std::uint64_t ticket = 0;
    double deadline = kNoDeadline;
    std::vector<T> z;
    std::vector<T> u;
    Clock::time_point enqueued;
    /// Minted trace identity (trace_id == 0 when tracing is off).
    telemetry::TraceContext ctx;
  };

  struct SessionState {
    SessionId id = 0;
    std::uint64_t tenant = 0;  ///< owner tag propagated into spans/statusz
    std::unique_ptr<Filter> filter;
    std::deque<Request> pending;
    bool busy = false;            ///< currently stepping inside a batch
    std::uint64_t completed = 0;  ///< requests executed
    std::uint64_t cost = 0;       ///< deterministic per-step work estimate
    /// Live work counters of the session's own telemetry (null without
    /// it); when present, `cost` tracks the measured per-step average of
    /// (compare-exchanges + RNG draws) since open instead of the static
    /// model. Both are machine-independent.
    const telemetry::Counter* work_cmpex = nullptr;
    const telemetry::Counter* work_rng = nullptr;
    std::uint64_t work_base = 0;  ///< counter sum when the session opened
  };

  [[nodiscard]] Admission admit_session_locked() const {
    if (draining_) return Admission::kDraining;
    if (sessions_.size() >= cfg_.max_sessions) return Admission::kSessionLimit;
    return Admission::kAccepted;
  }

  OpenResult insert_session_locked(std::unique_ptr<Filter> filter,
                                   const core::FilterConfig& fcfg,
                                   telemetry::Counter* opened_counter,
                                   std::uint64_t tenant) {
    SessionState s;
    s.id = next_session_++;
    s.tenant = tenant;
    s.cost = step_cost_model(fcfg, filter->model().state_dim());
    if (fcfg.telemetry != nullptr) {
      auto& reg = fcfg.telemetry->registry;
      s.work_cmpex = &reg.counter("work.compare_exchanges");
      s.work_rng = &reg.counter("work.rng_draws");
      s.work_base = s.work_cmpex->value() + s.work_rng->value();
    }
    s.filter = std::move(filter);
    const SessionId id = s.id;
    sessions_.emplace(id, std::move(s));
    if (opened_counter) opened_counter->add(1);
    publish_gauges_locked();
    return {Admission::kAccepted, id};
  }

  Admission note_reject(Admission why) {
    flight_.record(telemetry::FlightEventKind::kAdmission, to_string(why));
    if (telemetry::Counter* c = cnt_rejected_[static_cast<int>(why)]) c->add(1);
    return why;
  }

  SubmitResult rejected(Admission why) { return {note_reject(why), 0, {}}; }

  using SessionIter = typename std::map<SessionId, SessionState>::iterator;

  /// Waits until session `id` is idle and returns a fresh iterator to it,
  /// or sessions_.end() when the id is unknown or was erased while
  /// waiting. The session is re-looked-up after every wakeup: two threads
  /// may wait on the same busy session (e.g. close racing evict on one
  /// id), and the first waiter to wake can erase the map entry -- caching
  /// a reference or iterator across the wait would dangle.
  SessionIter wait_idle_locked(std::unique_lock<std::mutex>& lock,
                               SessionId id) {
    for (;;) {
      auto it = sessions_.find(id);
      if (it == sessions_.end() || !it->second.busy) return it;
      idle_cv_.wait(lock);
    }
  }

  void publish_gauges_locked() {
    if (gauge_queue_) gauge_queue_->set(static_cast<double>(queue_size_));
    if (gauge_sessions_) gauge_sessions_->set(static_cast<double>(sessions_.size()));
    if (gauge_dropped_spans_) {
      gauge_dropped_spans_->set(
          static_cast<double>(cfg_.telemetry->trace.dropped_spans()));
    }
    if (gauge_flight_occupancy_) {
      gauge_flight_occupancy_->set(static_cast<double>(flight_.occupancy()));
    }
    if (gauge_flight_overwritten_) {
      gauge_flight_overwritten_->set(static_cast<double>(flight_.overwritten()));
    }
  }

  /// Maps a detector name back to the registered string literal so the
  /// flight recorder stores a resolvable code address.
  [[nodiscard]] static const char* detector_code(const std::string& name) {
    for (const char* d :
         {"ess_collapse", "parent_starvation", "entropy_floor",
          "nonfinite_weights", "exchange_anomaly", "metropolis_bias"}) {
      if (name == d) return d;
    }
    return "monitor";
  }

  /// Monitor event hook: runs on the observing thread with the monitor's
  /// lock held. Must never take mutex_ (statusz holds mutex_ and then the
  /// monitor's lock); it touches only the lock-free flight recorder and
  /// the dedicated dump mutex.
  void on_monitor_event(const monitor::Event& e) {
    flight_.record(telemetry::FlightEventKind::kMonitor,
                   detector_code(e.detector), 0,
                   static_cast<std::uint64_t>(e.step),
                   static_cast<std::uint64_t>(e.group));
    if (!cfg_.flight_dump_path.empty()) dump_flight_to_path();
  }

  void dump_flight_to_path() const {
    std::lock_guard dump_lock(flight_dump_mutex_);
    std::ofstream os(cfg_.flight_dump_path, std::ios::trunc);
    if (os) flight_.dump_jsonl(os);
  }

  ServeConfig cfg_;
  mcore::ThreadPool pool_;
  std::shared_ptr<device::Device> device_;
  /// Always-on black box; declared after device_ to match the ctor init
  /// list, before anything that records into it.
  telemetry::FlightRecorder flight_;
  mutable std::mutex flight_dump_mutex_;  ///< serializes automatic dumps
  mutable std::mutex mutex_;
  std::condition_variable idle_cv_;
  std::map<SessionId, SessionState> sessions_;
  std::size_t queue_size_ = 0;
  std::size_t in_flight_batches_ = 0;  ///< batches between dispatch and done
  bool draining_ = false;
  SessionId next_session_ = 1;
  std::uint64_t next_ticket_ = 1;
  std::uint64_t next_batch_ = 1;  ///< batch sequence (span step + child salt)
  // Cached serve.* metrics (null without telemetry).
  telemetry::Counter* cnt_accepted_ = nullptr;
  telemetry::Counter* cnt_completed_ = nullptr;
  telemetry::Counter* cnt_rejected_[kAdmissionReasonCount] = {};
  telemetry::Counter* cnt_batches_ = nullptr;
  telemetry::Counter* cnt_opened_ = nullptr;
  telemetry::Counter* cnt_closed_ = nullptr;
  telemetry::Counter* cnt_evicted_ = nullptr;
  telemetry::Counter* cnt_restored_ = nullptr;
  telemetry::Counter* cnt_checkpoints_ = nullptr;
  telemetry::Gauge* gauge_queue_ = nullptr;
  telemetry::Gauge* gauge_sessions_ = nullptr;
  telemetry::Gauge* gauge_ckpt_bytes_ = nullptr;
  telemetry::Gauge* gauge_dropped_spans_ = nullptr;
  telemetry::Gauge* gauge_flight_occupancy_ = nullptr;
  telemetry::Gauge* gauge_flight_overwritten_ = nullptr;
  telemetry::LatencyHistogram* hist_latency_ = nullptr;
  telemetry::LatencyHistogram* hist_batch_ = nullptr;
  // Batch-level hardware-counter attribution (null when telemetry is off
  // or ESTHERA_PROFILE=off).
  profile::Profiler* prof_ = nullptr;
  profile::StageAccum* batch_accum_ = nullptr;
  telemetry::Gauge* gauge_batch_ipc_ = nullptr;
  telemetry::Gauge* gauge_batch_cpu_ns_ = nullptr;
};

/// Background scheduler: calls run_batch() in a loop, sleeping for the
/// batch window after each pass so concurrent submits coalesce into one
/// batch. stop() (also run by the destructor) joins the thread and then
/// drains the manager -- admitted requests always execute; later submits
/// reject with kDraining.
template <typename Model>
class BatchLoop {
 public:
  BatchLoop(SessionManager<Model>& manager, std::chrono::microseconds window)
      : manager_(manager), window_(window), thread_([this] { loop(); }) {}

  ~BatchLoop() { stop(); }
  BatchLoop(const BatchLoop&) = delete;
  BatchLoop& operator=(const BatchLoop&) = delete;

  /// Idempotent: stops the scheduler thread and drains remaining work.
  void stop() {
    stopping_.store(true, std::memory_order_relaxed);
    if (thread_.joinable()) thread_.join();
    manager_.drain();
  }

 private:
  void loop() {
    while (!stopping_.load(std::memory_order_relaxed)) {
      manager_.run_batch();
      std::this_thread::sleep_for(window_);
    }
  }

  SessionManager<Model>& manager_;
  std::chrono::microseconds window_;
  std::atomic<bool> stopping_{false};
  std::thread thread_;
};

}  // namespace esthera::serve
