// Emulated platform presets standing in for the paper's Table III hardware.
// We cannot reproduce GTX 580/680, HD 6970/7970 or the dual Xeon E5-2660;
// instead each preset fixes the two knobs that shape filter behaviour in
// our emulator: the worker count (SM/CU analogue) and the maximum
// work-group width (particles per sub-filter on the device path; the
// paper's GPUs cap this at 512/1024, its CPUs run small sub-filters).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace esthera::device {

struct PlatformSpec {
  std::string name;           ///< preset id, e.g. "emu-gpu-large"
  std::string models_after;   ///< the Table III entry this preset stands in for
  std::size_t workers;        ///< host threads emulating SMs/CUs (0 = auto)
  std::size_t max_group_size; ///< maximum particles per sub-filter
  std::size_t default_group_size;  ///< Table II default m for this class
};

/// All built-in presets, one per Table III platform class.
[[nodiscard]] std::span<const PlatformSpec> platform_presets();

/// Looks a preset up by name; throws std::invalid_argument if unknown.
[[nodiscard]] const PlatformSpec& platform_by_name(const std::string& name);

/// Describes the actual host this process runs on (cores, etc.), for
/// benchmark report headers.
[[nodiscard]] std::string host_description();

}  // namespace esthera::device
