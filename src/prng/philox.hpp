// Philox4x32-10 counter-based PRNG (Salmon et al., "Parallel Random Numbers:
// As Easy as 1, 2, 3", SC'11). Counter-based generation gives every
// (sub-filter, round, particle) tuple its own stream with no stored state,
// the modern alternative to the paper's MTGP scheme; we provide both and
// benchmark them against each other.
#pragma once

#include <array>
#include <cstdint>

namespace esthera::prng {

/// Stateless Philox4x32 block function: 10 rounds over a 128-bit counter
/// with a 64-bit key, producing 4 x 32 output bits per invocation.
struct Philox4x32 {
  using Counter = std::array<std::uint32_t, 4>;
  using Key = std::array<std::uint32_t, 2>;

  static Counter generate(Counter ctr, Key key);
};

/// Streaming adapter: fixed key (seed, stream-id), incrementing counter.
/// Satisfies the same uniform-bits interface as Mt19937.
class PhiloxStream {
 public:
  using result_type = std::uint32_t;

  PhiloxStream(std::uint64_t seed, std::uint64_t stream)
      : key_{static_cast<std::uint32_t>(seed), static_cast<std::uint32_t>(seed >> 32)},
        ctr_{0, 0, static_cast<std::uint32_t>(stream),
             static_cast<std::uint32_t>(stream >> 32)} {}

  std::uint32_t operator()() {
    if (have_ == 0) {
      block_ = Philox4x32::generate(ctr_, key_);
      advance_counter();
      have_ = 4;
    }
    return block_[4 - have_--];
  }

  void discard(unsigned long long n) {
    for (unsigned long long i = 0; i < n; ++i) (*this)();
  }

  static constexpr std::uint32_t min() { return 0; }
  static constexpr std::uint32_t max() { return 0xffffffffu; }

 private:
  void advance_counter() {
    if (++ctr_[0] == 0) ++ctr_[1];  // 64-bit position; stream id in ctr[2..3]
  }

  Philox4x32::Key key_;
  Philox4x32::Counter ctr_;
  Philox4x32::Counter block_{};
  int have_ = 0;
};

}  // namespace esthera::prng
