// The paper's robotic-arm application (Sec. VII-A): an industrial arm with
// J independently controlled joints (theta_0 is the base rotation about the
// vertical axis, theta_1..theta_{J-1} pitch joints in the arm plane) and a
// camera at the end effector tracking an object moving on the fixed x-y
// ground plane.
//
// State   x = (theta_0..theta_{J-1}, ox, oy, vx, vy)      dim = J + 4
// Control u = (u_0..u_{J-1})                              joint rates
// Meas.   z = (theta^_0..theta^_{J-1}, xC, yC)            dim = J + 2
//
// Dynamics (paper's single/double integrators):
//   theta_i' = theta_i + h_s u_i + w_theta
//   ox'      = ox + vx h_s + w_x        vx' = vx + w_vx   (same for y)
// Measurements: per-joint angle sensors plus the camera observation
// (xC, yC) = the object position expressed in the moving camera frame via
// the rotation-translation chain h(x) - the highly nonlinear part.
//
// The Table II noise magnitudes are garbled in the available paper text
// ("N(0, 0.)"); the defaults below are chosen so that the default filter
// configuration converges while small configurations visibly fail, which
// reproduces the paper's qualitative behaviour (Figs 6-9).
#pragma once

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstddef>
#include <span>
#include <utility>
#include <vector>

namespace esthera::models {

template <typename T>
struct RobotArmParams {
  std::size_t n_joints = 5;   ///< includes the base joint; state dim = n_joints + 4
  T arm_length = T(2);        ///< total arm length [m], split over the segments
  T base_height = T(0.5);     ///< camera height when the arm lies flat [m]
  // Defaults calibrated (see EXPERIMENTS.md) so that the paper's
  // qualitative results reproduce: good configurations converge, tiny ones
  // fail, All-to-All loses diversity, and the Ring/Torus accuracy crossover
  // appears as the network grows.
  T dt = T(0.05);             ///< sampling time h_s [s]
  T sigma_theta = T(0.01);    ///< process noise on each joint angle [rad]
  T sigma_pos = T(0.02);      ///< process noise on object position [m]
  T sigma_vel = T(0.025);     ///< process noise on object velocity [m/s]
  T meas_sigma_theta = T(0.03);  ///< joint angle sensor noise [rad]
  T meas_sigma_cam = T(0.05);    ///< camera observation noise [m]
  T init_sigma_theta = T(0.1);   ///< initial angle uncertainty [rad]
  T init_sigma_pos = T(0.5);     ///< initial object position uncertainty [m]
  T init_sigma_vel = T(0.2);     ///< initial object velocity uncertainty [m/s]
};

/// 3-vector helper used by the kinematic chain.
template <typename T>
struct Vec3 {
  T x{}, y{}, z{};
};

/// Camera pose: position plus the two image-plane axes (orthographic
/// camera). `right` spans the horizontal image axis, `up` the vertical one.
template <typename T>
struct CameraPose {
  Vec3<T> position;
  Vec3<T> right;
  Vec3<T> up;
};

template <typename T>
class RobotArmModel {
 public:
  using Scalar = T;

  explicit RobotArmModel(RobotArmParams<T> params = {},
                         std::vector<T> init_mean = {})
      : p_(params), init_mean_(std::move(init_mean)) {
    assert(p_.n_joints >= 1);
    if (init_mean_.empty()) init_mean_.assign(state_dim(), T(0));
    assert(init_mean_.size() == state_dim());
  }

  [[nodiscard]] const RobotArmParams<T>& params() const { return p_; }
  [[nodiscard]] std::size_t n_joints() const { return p_.n_joints; }
  [[nodiscard]] std::size_t state_dim() const { return p_.n_joints + 4; }
  [[nodiscard]] std::size_t measurement_dim() const { return p_.n_joints + 2; }
  [[nodiscard]] std::size_t control_dim() const { return p_.n_joints; }
  [[nodiscard]] std::size_t noise_dim() const { return state_dim(); }
  [[nodiscard]] std::size_t init_noise_dim() const { return state_dim(); }
  [[nodiscard]] std::size_t measurement_noise_dim() const { return measurement_dim(); }

  /// Mean initial state around which particles are spawned.
  [[nodiscard]] std::span<const T> init_mean() const { return init_mean_; }
  void set_init_mean(std::vector<T> mean) {
    assert(mean.size() == state_dim());
    init_mean_ = std::move(mean);
  }

  void sample_initial(std::span<T> x, std::span<const T> normals) const {
    assert(x.size() == state_dim() && normals.size() >= init_noise_dim());
    // Bounding by the span size (always n_joints + 4) lets the optimizer
    // prove the loop finite, silencing a spurious -Waggressive-loop warning.
    const std::size_t j = std::min(p_.n_joints, x.size() - 4);
    const T* mean = init_mean_.data();
    for (std::size_t i = 0; i < j; ++i) {
      x[i] = mean[i] + p_.init_sigma_theta * normals[i];
    }
    x[j + 0] = mean[j + 0] + p_.init_sigma_pos * normals[j + 0];
    x[j + 1] = mean[j + 1] + p_.init_sigma_pos * normals[j + 1];
    x[j + 2] = mean[j + 2] + p_.init_sigma_vel * normals[j + 2];
    x[j + 3] = mean[j + 3] + p_.init_sigma_vel * normals[j + 3];
  }

  void sample_transition(std::span<const T> x_prev, std::span<T> x,
                         std::span<const T> u, std::span<const T> normals,
                         std::size_t /*step*/) const {
    assert(x_prev.size() == state_dim() && x.size() == state_dim());
    assert(normals.size() >= noise_dim());
    const std::size_t j = p_.n_joints;
    const T h = p_.dt;
    for (std::size_t i = 0; i < j; ++i) {
      const T ui = i < u.size() ? u[i] : T(0);
      x[i] = x_prev[i] + h * ui + p_.sigma_theta * normals[i];
    }
    x[j + 0] = x_prev[j + 0] + x_prev[j + 2] * h + p_.sigma_pos * normals[j + 0];
    x[j + 1] = x_prev[j + 1] + x_prev[j + 3] * h + p_.sigma_pos * normals[j + 1];
    x[j + 2] = x_prev[j + 2] + p_.sigma_vel * normals[j + 2];
    x[j + 3] = x_prev[j + 3] + p_.sigma_vel * normals[j + 3];
  }

  /// Forward kinematics: camera pose from the joint angles.
  [[nodiscard]] CameraPose<T> camera_pose(std::span<const T> angles) const {
    assert(angles.size() >= p_.n_joints);
    const T yaw = angles[0];
    const T cy = std::cos(yaw);
    const T sy = std::sin(yaw);
    const std::size_t segments = p_.n_joints > 1 ? p_.n_joints - 1 : 0;
    const T seg_len = segments > 0 ? p_.arm_length / static_cast<T>(segments)
                                   : p_.arm_length;
    Vec3<T> pos{T(0), T(0), p_.base_height};
    T pitch = T(0);
    for (std::size_t s = 0; s < segments; ++s) {
      pitch += angles[s + 1];
      const T cp = std::cos(pitch);
      const T sp = std::sin(pitch);
      pos.x += seg_len * cp * cy;
      pos.y += seg_len * cp * sy;
      pos.z += seg_len * sp;
    }
    // Camera forward axis points along the last segment; right axis is the
    // horizontal perpendicular; up completes the frame (forward x right).
    const T cp = std::cos(pitch);
    const T sp = std::sin(pitch);
    CameraPose<T> cam;
    cam.position = pos;
    cam.right = {-sy, cy, T(0)};
    cam.up = {-sp * cy, -sp * sy, cp};
    return cam;
  }

  /// Noise-free measurement h(x): joint angles followed by the camera-frame
  /// object coordinates (xC, yC) - the rotation-translation chain.
  void measure(std::span<const T> x, std::span<T> z) const {
    assert(x.size() == state_dim() && z.size() == measurement_dim());
    const std::size_t j = std::min(p_.n_joints, z.size() - 2);
    for (std::size_t i = 0; i < j; ++i) z[i] = x[i];
    const CameraPose<T> cam = camera_pose(x.first(j));
    const Vec3<T> d{x[j + 0] - cam.position.x, x[j + 1] - cam.position.y,
                    T(0) - cam.position.z};
    z[j + 0] = d.x * cam.right.x + d.y * cam.right.y + d.z * cam.right.z;
    z[j + 1] = d.x * cam.up.x + d.y * cam.up.y + d.z * cam.up.z;
  }

  /// Draws a noisy measurement z ~ p(z | x) for the ground-truth simulator.
  void sample_measurement(std::span<const T> x, std::span<T> z,
                          std::span<const T> normals) const {
    assert(normals.size() >= measurement_noise_dim());
    measure(x, z);
    const std::size_t j = p_.n_joints;
    for (std::size_t i = 0; i < j; ++i) z[i] += p_.meas_sigma_theta * normals[i];
    z[j + 0] += p_.meas_sigma_cam * normals[j + 0];
    z[j + 1] += p_.meas_sigma_cam * normals[j + 1];
  }

  /// log p(z | x): independent Gaussians on every measurement channel
  /// (additive constants dropped; they cancel in the weight normalization).
  [[nodiscard]] T log_likelihood(std::span<const T> x, std::span<const T> z) const {
    assert(z.size() == measurement_dim());
    const std::size_t j = p_.n_joints;
    // Stack buffer covers the default model; fall back for huge dim sweeps.
    T zbuf_small[64];
    std::vector<T> zbuf_large;
    std::span<T> zh;
    if (measurement_dim() <= 64) {
      zh = {zbuf_small, measurement_dim()};
    } else {
      zbuf_large.resize(measurement_dim());
      zh = zbuf_large;
    }
    measure(x, zh);
    T ll = T(0);
    const T inv_var_theta = T(1) / (p_.meas_sigma_theta * p_.meas_sigma_theta);
    for (std::size_t i = 0; i < j; ++i) {
      const T e = z[i] - zh[i];
      ll -= T(0.5) * e * e * inv_var_theta;
    }
    const T inv_var_cam = T(1) / (p_.meas_sigma_cam * p_.meas_sigma_cam);
    for (std::size_t i = j; i < j + 2; ++i) {
      const T e = z[i] - zh[i];
      ll -= T(0.5) * e * e * inv_var_cam;
    }
    return ll;
  }

  /// Object position (x, y) extracted from a state vector.
  [[nodiscard]] std::pair<T, T> object_position(std::span<const T> x) const {
    const std::size_t j = p_.n_joints;
    return {x[j + 0], x[j + 1]};
  }

 private:
  RobotArmParams<T> p_;
  std::vector<T> init_mean_;
};

}  // namespace esthera::models
