// The paper's application: an N-joint robotic arm with a camera at the end
// effector tracks an object moving along a lemniscate on the ground plane
// (Sec. VII-A / Fig 8), estimated by the distributed particle filter on the
// emulated many-core device.
//
//   ./robot_arm_tracking                         # Table II-like defaults, scaled down
//   ./robot_arm_tracking --joints 8 --steps 300
//   ./robot_arm_tracking --m 512 --filters 1024  # full Table II configuration
//   ./robot_arm_tracking --scheme torus --t 2
//   ./robot_arm_tracking --csv trace.csv         # dump the trace for plotting
#include <fstream>
#include <iostream>

#include "bench_util/cli.hpp"
#include "core/distributed_pf.hpp"
#include "models/robot_arm.hpp"
#include "sim/ground_truth.hpp"

int main(int argc, char** argv) {
  using namespace esthera;
  bench_util::Cli cli(argc, argv);

  sim::RobotArmScenarioConfig scenario_cfg;
  scenario_cfg.arm.n_joints = cli.get_size("--joints", 5);
  const std::size_t steps = cli.get_size("--steps", 200);

  core::FilterConfig cfg;
  cfg.particles_per_filter = cli.get_size("--m", 64);
  cfg.num_filters = cli.get_size("--filters", 64);
  cfg.scheme = topology::parse_scheme(cli.get("--scheme", "ring"));
  cfg.exchange_particles = cli.get_size("--t", 1);
  cfg.resample = core::parse_resample_algorithm(cli.get("--resample", "rws"));
  cfg.estimator = core::parse_estimator(cli.get("--estimator", "max"));
  cfg.seed = cli.get_u64("--seed", 42);
  cfg.workers = cli.get_size("--workers", 0);
  cfg.validate();

  sim::RobotArmScenario scenario(scenario_cfg);
  scenario.reset(cfg.seed);
  core::DistributedParticleFilter<models::RobotArmModel<float>> filter(
      scenario.make_model<float>(), cfg);

  std::cout << "Robot-arm tracking (" << scenario_cfg.arm.n_joints
            << " joints, state dim " << scenario.model().state_dim() << ")\n"
            << "filter: " << cfg.summary() << "\n\n";

  std::ofstream csv;
  const std::string csv_path = cli.get("--csv", "");
  if (!csv_path.empty()) {
    csv.open(csv_path);
    csv << "step,truth_x,truth_y,est_x,est_y,error\n";
  }

  const std::size_t j = scenario_cfg.arm.n_joints;
  std::vector<float> z, u;
  double sum_sq = 0.0;
  for (std::size_t k = 0; k < steps; ++k) {
    const auto step = scenario.advance();
    z.assign(step.z.begin(), step.z.end());
    u.assign(step.u.begin(), step.u.end());
    filter.step(z, u);
    const double ex = filter.estimate()[j + 0] - step.truth[j + 0];
    const double ey = filter.estimate()[j + 1] - step.truth[j + 1];
    const double err = std::sqrt(ex * ex + ey * ey);
    sum_sq += err * err;
    if (csv.is_open()) {
      csv << k << ',' << step.truth[j + 0] << ',' << step.truth[j + 1] << ','
          << filter.estimate()[j + 0] << ',' << filter.estimate()[j + 1] << ','
          << err << '\n';
    }
    if (k % 20 == 0 || k + 1 == steps) {
      std::printf("step %4zu  object truth (%6.3f, %6.3f)  estimate (%6.3f, %6.3f)"
                  "  error %.3f m\n",
                  k, step.truth[j + 0], step.truth[j + 1],
                  static_cast<double>(filter.estimate()[j + 0]),
                  static_cast<double>(filter.estimate()[j + 1]), err);
    }
  }
  std::printf("\nRMSE over %zu steps: %.4f m\n", steps,
              std::sqrt(sum_sq / static_cast<double>(steps)));
  std::printf("update rate: %.1f Hz (kernel breakdown: %s)\n",
              static_cast<double>(steps) / filter.timers().total(),
              filter.timers().breakdown_string().c_str());
  if (csv.is_open()) std::printf("trace written to %s\n", csv_path.c_str());
  return 0;
}
