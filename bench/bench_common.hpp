// Shared plumbing for the figure/table benchmark harnesses: an accuracy
// experiment runner implementing the paper's protocol (average estimation
// error over R independent runs of S time steps each, Sec. VII-D) and a
// throughput runner measuring achieved filter update rates (Fig 3).
#pragma once

#include <chrono>
#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "bench_util/cli.hpp"
#include "bench_util/table.hpp"
#include "core/centralized_pf.hpp"
#include "core/distributed_pf.hpp"
#include "device/backend.hpp"
#include "device/invariants.hpp"
#include "device/platform.hpp"
#include "estimation/metrics.hpp"
#include "mcore/thread_pool.hpp"
#include "models/robot_arm.hpp"
#include "sim/ground_truth.hpp"
#include "telemetry/json.hpp"
#include "telemetry/openmetrics.hpp"
#include "telemetry/sinks.hpp"
#include "telemetry/telemetry.hpp"
#include "version.hpp"

namespace esthera::bench {

/// Flags every Report-owning bench accepts: the export flags documented
/// on Report plus --full. Pass bench-specific extras to get the complete
/// accepted-flag list for Cli::parse_or_exit.
inline std::vector<std::string> standard_flags(std::vector<std::string> extras = {}) {
  std::vector<std::string> flags = {"--full",         "--json",
                                    "--trace",        "--series-jsonl",
                                    "--series-csv",   "--telemetry",
                                    "--workers",      "--backend",
                                    "--openmetrics"};
  flags.insert(flags.end(), extras.begin(), extras.end());
  return flags;
}

/// Applies the --workers override before any pool exists: takes precedence
/// over ESTHERA_WORKERS, same grammar (fully numeric, in
/// [1, ThreadPool::kMaxWorkers]) -- but a flag typo exits 2 instead of
/// silently falling back the way a malformed environment variable does.
/// The resolved count lands in the report's "build" stamp as usual. The
/// Report constructor calls this, so Report-owning benches get it for free.
inline void apply_workers_flag(const bench_util::Cli& cli) {
  if (!cli.has("--workers")) return;
  const std::string v = cli.get("--workers", "");
  bool numeric = !v.empty();
  for (const char c : v) numeric = numeric && c >= '0' && c <= '9';
  long parsed = 0;
  if (numeric) {
    errno = 0;
    char* end = nullptr;
    parsed = std::strtol(v.c_str(), &end, 10);
    numeric = errno == 0 && end == v.c_str() + v.size();
  }
  if (!numeric || parsed < 1 || parsed > mcore::ThreadPool::kMaxWorkers) {
    std::cerr << "error: --workers expects an integer in [1, "
              << mcore::ThreadPool::kMaxWorkers << "], got '" << v << "'\n";
    std::exit(2);
  }
  mcore::ThreadPool::set_default_worker_count(static_cast<std::size_t>(parsed));
}

/// Applies the --backend override: takes precedence over ESTHERA_BACKEND,
/// same grammar (exactly "scalar" or "simd") -- but a flag typo exits 2
/// instead of silently falling back the way a malformed environment
/// variable does. The resolved backend lands in the report's "build"
/// stamp. The Report constructor calls this, so Report-owning benches get
/// it for free; every FilterConfig/CentralizedOptions left at
/// Backend::kAuto then resolves to the override.
inline void apply_backend_flag(const bench_util::Cli& cli) {
  if (!cli.has("--backend")) return;
  const std::string v = cli.get("--backend", "");
  try {
    // "auto" clears the override, re-exposing ESTHERA_BACKEND.
    device::set_default_backend(device::parse_backend(v));
  } catch (const std::invalid_argument&) {
    std::cerr << "error: --backend expects 'scalar', 'simd' or 'auto', got '"
              << v << "'\n";
    std::exit(2);
  }
}

/// The flags Protocol::from_cli reads, plus bench-specific extras; nest
/// inside standard_flags or plain_flags to build the full accepted list.
inline std::vector<std::string> protocol_flags(std::vector<std::string> extras = {}) {
  std::vector<std::string> flags = {"--runs", "--steps", "--seed", "--warmup"};
  flags.insert(flags.end(), extras.begin(), extras.end());
  return flags;
}

/// Flags for benches without a Report: just --full plus extras.
inline std::vector<std::string> plain_flags(std::vector<std::string> extras = {}) {
  std::vector<std::string> flags = {"--full"};
  flags.insert(flags.end(), extras.begin(), extras.end());
  return flags;
}

/// Protocol parameters for accuracy experiments.
struct Protocol {
  std::size_t runs = 5;     ///< independent runs (paper: 100)
  std::size_t steps = 60;   ///< time steps per run (paper: 100)
  std::size_t warmup = 10;  ///< steps excluded from the error average
  std::uint64_t seed = 1;

  static Protocol from_cli(const bench_util::Cli& cli) {
    Protocol p;
    if (cli.full_scale()) {
      p.runs = 100;
      p.steps = 100;
    }
    p.runs = cli.get_size("--runs", p.runs);
    p.steps = cli.get_size("--steps", p.steps);
    p.seed = cli.get_u64("--seed", p.seed);
    p.warmup = cli.get_size("--warmup", p.warmup);
    if (p.warmup >= p.steps) {
      std::cerr << "error: --warmup (" << p.warmup
                << ") must be smaller than --steps (" << p.steps
                << "); no steps would enter the error average\n";
      std::exit(2);
    }
    return p;
  }
};

/// Mean object-position estimation error of a distributed filter on the
/// robot-arm scenario under the given configuration.
inline double distributed_arm_error(const core::FilterConfig& cfg,
                                    const Protocol& proto,
                                    sim::RobotArmScenarioConfig scenario_cfg = {}) {
  estimation::ErrorAccumulator err;
  sim::RobotArmScenario scenario(scenario_cfg);
  const std::size_t j = scenario_cfg.arm.n_joints;
  std::vector<float> z, u;
  for (std::size_t r = 0; r < proto.runs; ++r) {
    scenario.reset(proto.seed + r);
    core::FilterConfig run_cfg = cfg;
    run_cfg.seed = cfg.seed + r * 7919;
    core::DistributedParticleFilter<models::RobotArmModel<float>> pf(
        scenario.make_model<float>(), run_cfg);
    for (std::size_t k = 0; k < proto.steps; ++k) {
      const auto step = scenario.advance();
      z.assign(step.z.begin(), step.z.end());
      u.assign(step.u.begin(), step.u.end());
      pf.step(z, u);
      if (k >= proto.warmup) {
        const double ex =
            static_cast<double>(pf.estimate()[j + 0]) - step.truth[j + 0];
        const double ey =
            static_cast<double>(pf.estimate()[j + 1]) - step.truth[j + 1];
        err.add_step(std::vector<double>{ex, ey});
      }
    }
  }
  return err.rmse();
}

/// Same protocol for the sequential, centralized reference filter
/// (double precision, Vose resampling - the paper's C reference).
inline double centralized_arm_error(std::size_t n_particles, const Protocol& proto,
                                    sim::RobotArmScenarioConfig scenario_cfg = {}) {
  estimation::ErrorAccumulator err;
  sim::RobotArmScenario scenario(scenario_cfg);
  const std::size_t j = scenario_cfg.arm.n_joints;
  for (std::size_t r = 0; r < proto.runs; ++r) {
    scenario.reset(proto.seed + r);
    core::CentralizedOptions opts;
    opts.seed = 1000 + r * 7919;
    core::CentralizedParticleFilter<models::RobotArmModel<double>> pf(
        scenario.make_model<double>(), n_particles, opts);
    for (std::size_t k = 0; k < proto.steps; ++k) {
      const auto step = scenario.advance();
      pf.step(step.z, step.u);
      if (k >= proto.warmup) {
        const double ex = pf.estimate()[j + 0] - step.truth[j + 0];
        const double ey = pf.estimate()[j + 1] - step.truth[j + 1];
        err.add_step(std::vector<double>{ex, ey});
      }
    }
  }
  return err.rmse();
}

/// Achieved update rate (rounds per second) of a distributed filter on the
/// robot-arm scenario, measured over `steps` rounds after one warmup round.
inline double distributed_arm_hz(const core::FilterConfig& cfg, std::size_t steps,
                                 sim::RobotArmScenarioConfig scenario_cfg = {}) {
  sim::RobotArmScenario scenario(scenario_cfg);
  scenario.reset(3);
  core::DistributedParticleFilter<models::RobotArmModel<float>> pf(
      scenario.make_model<float>(), cfg);
  std::vector<float> z, u;
  const auto run_step = [&] {
    const auto step = scenario.advance();
    z.assign(step.z.begin(), step.z.end());
    u.assign(step.u.begin(), step.u.end());
    pf.step(z, u);
  };
  run_step();  // warmup
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < steps; ++k) run_step();
  const auto end = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(end - start).count();
  return static_cast<double>(steps) / secs;
}

/// Update rate of the centralized reference filter.
inline double centralized_arm_hz(std::size_t n_particles, std::size_t steps,
                                 sim::RobotArmScenarioConfig scenario_cfg = {}) {
  sim::RobotArmScenario scenario(scenario_cfg);
  scenario.reset(3);
  core::CentralizedParticleFilter<models::RobotArmModel<double>> pf(
      scenario.make_model<double>(), n_particles);
  const auto run_step = [&] {
    const auto step = scenario.advance();
    pf.step(step.z, step.u);
  };
  run_step();
  const auto start = std::chrono::steady_clock::now();
  for (std::size_t k = 0; k < steps; ++k) run_step();
  const auto end = std::chrono::steady_clock::now();
  const double secs = std::chrono::duration<double>(end - start).count();
  return static_cast<double>(steps) / secs;
}

/// Prints the standard bench header (paper reference + configuration).
inline void print_header(const char* figure, const char* description) {
  std::cout << "== Esthera reproduction: " << figure << " ==\n"
            << description << "\n"
            << device::host_description() << "\n\n";
}

/// Machine-readable bench output + optional telemetry attachment.
///
/// Every bench harness owns one Report: it mirrors what the bench prints
/// (tables and named scalars) and, when exporting was requested, owns the
/// telemetry::Telemetry instance the filters record into. Flags:
///   --json <path>          full machine-readable report (esthera.bench/1),
///                          with the telemetry snapshot under "telemetry"
///   --trace <path>         Chrome Trace Event JSON of every kernel launch
///                          (load in chrome://tracing or ui.perfetto.dev)
///   --series-jsonl <path>  per-step series as JSON Lines
///   --series-csv <path>    per-step series as CSV
///   --openmetrics <path>   OpenMetrics text exposition of the metrics
///                          registry (Prometheus-scrapable; counters,
///                          gauges, histograms with le buckets + exemplars)
///   --telemetry            attach telemetry without exporting (breakdowns
///                          and counters still accumulate)
///   --workers N            worker-thread override (precedence over
///                          ESTHERA_WORKERS; recorded in the build stamp)
///   --backend B            device-backend override: scalar | simd | auto
///                          (precedence over ESTHERA_BACKEND; recorded in
///                          the build stamp; bit-identical by contract)
/// Telemetry is attached when any flag above is present, or by default in
/// -DESTHERA_TELEMETRY builds; telemetry() returns null otherwise, so the
/// filters keep their zero-cost path.
class Report {
 public:
  Report(const bench_util::Cli& cli, std::string name, std::string description)
      : name_(std::move(name)),
        description_(std::move(description)),
        full_scale_(cli.full_scale()),
        json_path_(cli.get("--json", "")),
        trace_path_(cli.get("--trace", "")),
        jsonl_path_(cli.get("--series-jsonl", "")),
        csv_path_(cli.get("--series-csv", "")),
        openmetrics_path_(cli.get("--openmetrics", "")) {
    apply_workers_flag(cli);
    apply_backend_flag(cli);
    if (telemetry::kTelemetryBuild || cli.has("--telemetry") ||
        !json_path_.empty() || !trace_path_.empty() || !jsonl_path_.empty() ||
        !csv_path_.empty() || !openmetrics_path_.empty()) {
      telemetry_ = std::make_unique<telemetry::Telemetry>();
    }
  }

  /// Prints the standard header for this report's figure.
  void print_header() const {
    bench::print_header(name_.c_str(), description_.c_str());
  }

  /// The sink the bench should hand to its filters (FilterConfig::telemetry
  /// / CentralizedOptions::telemetry); null when no exporting was requested.
  [[nodiscard]] telemetry::Telemetry* telemetry() { return telemetry_.get(); }

  /// Records a named scalar result (update rate, RMSE, ...).
  void add_value(std::string key, double value) {
    values_.emplace_back(std::move(key), value);
  }

  /// Snapshots a printed table under `key` (copies headers and rows).
  void add_table(std::string key, const bench_util::Table& table) {
    tables_.push_back({std::move(key), table.headers(), table.rows()});
  }

  /// Writes every requested export. Returns the bench exit status: 0, or 1
  /// when an output file could not be opened.
  [[nodiscard]] int write() const {
    int status = 0;
    if (telemetry_) {
      // Introspection gauges in every snapshot (gauges are notes-only in
      // bench_compare, so these never gate and never churn baselines).
      telemetry_->registry.gauge("trace.spans")
          .set(static_cast<double>(telemetry_->trace.span_count()));
      telemetry_->registry.gauge("trace.dropped_spans")
          .set(static_cast<double>(telemetry_->trace.dropped_spans()));
    }
    if (!json_path_.empty() && !write_json_file()) status = 1;
    if (!trace_path_.empty()) {
      std::ofstream os(trace_path_);
      if (os && telemetry_) {
        telemetry_->trace.write_chrome_trace(os);
        std::cout << "trace: " << trace_path_ << '\n';
      } else {
        std::cerr << "error: cannot write trace to " << trace_path_ << '\n';
        status = 1;
      }
    }
    if (!jsonl_path_.empty() && telemetry_) {
      std::ofstream os(jsonl_path_);
      if (os) {
        telemetry::write_series_jsonl(os, telemetry_->series);
      } else {
        std::cerr << "error: cannot write series to " << jsonl_path_ << '\n';
        status = 1;
      }
    }
    if (!csv_path_.empty() && telemetry_) {
      std::ofstream os(csv_path_);
      if (os) {
        telemetry::write_series_csv(os, telemetry_->series);
      } else {
        std::cerr << "error: cannot write series to " << csv_path_ << '\n';
        status = 1;
      }
    }
    if (!openmetrics_path_.empty() && telemetry_) {
      std::ofstream os(openmetrics_path_);
      if (os) {
        telemetry::openmetrics::Writer w(os);
        // Profiler identity first so scrapers can key off the mode before
        // interpreting the derived profile.* gauges.
        w.info("profile", "hardware-counter profiler identity",
               {{"mode", profile::to_string(telemetry_->profile.mode())},
                {"unavailable", telemetry_->profile.unavailable_reason()}});
        telemetry::openmetrics::write_families(w, telemetry_->registry);
        w.eof();
        std::cout << "openmetrics: " << openmetrics_path_ << '\n';
      } else {
        std::cerr << "error: cannot write openmetrics to " << openmetrics_path_
                  << '\n';
        status = 1;
      }
    }
    return status;
  }

 private:
  struct TableCopy {
    std::string key;
    std::vector<std::string> headers;
    std::vector<std::vector<std::string>> rows;
  };

  /// Emits a table cell as a JSON number when it parses fully as one (the
  /// common case: Table::num output), as a string otherwise (labels).
  static void write_cell(telemetry::json::JsonWriter& w, const std::string& cell) {
    if (!cell.empty()) {
      char* end = nullptr;
      const double v = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str() + cell.size() && std::isfinite(v)) {
        w.value(v);
        return;
      }
    }
    w.value(cell);
  }

  [[nodiscard]] bool write_json_file() const {
    std::ofstream os(json_path_);
    if (!os) {
      std::cerr << "error: cannot write report to " << json_path_ << '\n';
      return false;
    }
    telemetry::json::JsonWriter w(os);
    w.begin_object();
    w.kv("schema", "esthera.bench/1");
    w.kv("name", name_);
    w.kv("description", description_);
    w.kv("host", device::host_description());
    w.kv("full_scale", full_scale_);
    // Build stamp: lets bench_compare refuse apples-to-oranges diffs (a
    // debug report against a release baseline, say) instead of reporting
    // them as regressions.
    w.key("build");
    w.begin_object();
    w.kv("version", kVersionString);
#ifdef NDEBUG
    w.kv("build_type", "release");
#else
    w.kv("build_type", "debug");
#endif
    w.kv("checked", debug::kCheckedBuild);
    w.kv("telemetry_build", telemetry::kTelemetryBuild);
    w.kv("workers",
         static_cast<std::uint64_t>(mcore::ThreadPool::default_worker_count()));
    w.kv("backend", device::to_string(device::default_backend()));
    if (telemetry_) {
      // Counter source for the profile.* gauges in this snapshot; strings,
      // so bench_compare's exact-match gate (build_type/checked/
      // telemetry_build only) never trips on them.
      w.kv("profile_mode", profile::to_string(telemetry_->profile.mode()));
      w.kv("profile_unavailable", telemetry_->profile.unavailable_reason());
    }
    w.end_object();
    w.key("values");
    w.begin_object();
    for (const auto& [key, value] : values_) w.kv(key, value);
    w.end_object();
    w.key("tables");
    w.begin_object();
    for (const TableCopy& t : tables_) {
      w.key(t.key);
      w.begin_object();
      w.key("headers");
      w.begin_array();
      for (const auto& h : t.headers) w.value(h);
      w.end_array();
      w.key("rows");
      w.begin_array();
      for (const auto& row : t.rows) {
        w.begin_array();
        for (const auto& cell : row) write_cell(w, cell);
        w.end_array();
      }
      w.end_array();
      w.end_object();
    }
    w.end_object();
    if (telemetry_) {
      w.key("telemetry");
      w.begin_object();
      telemetry::write_snapshot_fields(w, *telemetry_);
      w.end_object();
    }
    w.end_object();
    os << '\n';
    std::cout << "json: " << json_path_ << '\n';
    return true;
  }

  std::string name_;
  std::string description_;
  bool full_scale_ = false;
  std::string json_path_;
  std::string trace_path_;
  std::string jsonl_path_;
  std::string csv_path_;
  std::string openmetrics_path_;
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  std::vector<std::pair<std::string, double>> values_;
  std::vector<TableCopy> tables_;
};

}  // namespace esthera::bench
