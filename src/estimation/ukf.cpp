#include "estimation/ukf.hpp"

#include <cassert>
#include <cmath>

namespace esthera::estimation {

UnscentedKalmanFilter::UnscentedKalmanFilter(TransitionFn f, MeasurementFn h,
                                             Matrix q, Matrix r,
                                             std::vector<double> x0, Matrix p0,
                                             UkfParams params)
    : f_(std::move(f)),
      h_(std::move(h)),
      q_(std::move(q)),
      r_(std::move(r)),
      x_(std::move(x0)),
      p_(std::move(p0)),
      params_(params) {
  const auto n = static_cast<double>(x_.size());
  lambda_ = params_.alpha * params_.alpha * (n + params_.kappa) - n;
  const std::size_t count = 2 * x_.size() + 1;
  wm_.assign(count, 1.0 / (2.0 * (n + lambda_)));
  wc_ = wm_;
  wm_[0] = lambda_ / (n + lambda_);
  wc_[0] = wm_[0] + (1.0 - params_.alpha * params_.alpha + params_.beta);
}

Matrix UnscentedKalmanFilter::sigma_points() const {
  const std::size_t n = x_.size();
  Matrix scaled = p_;
  const double factor = static_cast<double>(n) + lambda_;
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t c = 0; c < n; ++c) scaled(r, c) *= factor;
  }
  const Matrix l = cholesky(scaled);
  Matrix pts(2 * n + 1, n);
  for (std::size_t c = 0; c < n; ++c) pts(0, c) = x_[c];
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t c = 0; c < n; ++c) {
      pts(1 + i, c) = x_[c] + l(c, i);
      pts(1 + n + i, c) = x_[c] - l(c, i);
    }
  }
  return pts;
}

void UnscentedKalmanFilter::predict(std::span<const double> u) {
  const std::size_t n = x_.size();
  const Matrix pts = sigma_points();
  propagated_ = Matrix(pts.rows(), n);
  std::vector<double> point(n);
  for (std::size_t s = 0; s < pts.rows(); ++s) {
    for (std::size_t c = 0; c < n; ++c) point[c] = pts(s, c);
    const auto next = f_(point, u, step_);
    for (std::size_t c = 0; c < n; ++c) propagated_(s, c) = next[c];
  }
  // Predicted mean and covariance.
  std::fill(x_.begin(), x_.end(), 0.0);
  for (std::size_t s = 0; s < propagated_.rows(); ++s) {
    for (std::size_t c = 0; c < n; ++c) x_[c] += wm_[s] * propagated_(s, c);
  }
  p_ = q_;
  for (std::size_t s = 0; s < propagated_.rows(); ++s) {
    for (std::size_t r = 0; r < n; ++r) {
      const double dr = propagated_(s, r) - x_[r];
      for (std::size_t c = 0; c < n; ++c) {
        p_(r, c) += wc_[s] * dr * (propagated_(s, c) - x_[c]);
      }
    }
  }
  symmetrize(p_);
  ++step_;
}

void UnscentedKalmanFilter::update(std::span<const double> z) {
  const std::size_t n = x_.size();
  const std::size_t mdim = z.size();
  // Re-draw sigma points around the predicted state so the measurement
  // update sees the full predicted uncertainty (standard additive-noise UKF).
  const Matrix pts = sigma_points();
  Matrix zpts(pts.rows(), mdim);
  std::vector<double> point(n);
  for (std::size_t s = 0; s < pts.rows(); ++s) {
    for (std::size_t c = 0; c < n; ++c) point[c] = pts(s, c);
    const auto zi = h_(point);
    assert(zi.size() == mdim);
    for (std::size_t c = 0; c < mdim; ++c) zpts(s, c) = zi[c];
  }
  std::vector<double> z_mean(mdim, 0.0);
  for (std::size_t s = 0; s < zpts.rows(); ++s) {
    for (std::size_t c = 0; c < mdim; ++c) z_mean[c] += wm_[s] * zpts(s, c);
  }
  Matrix s_cov = r_;
  Matrix cross(n, mdim);
  for (std::size_t s = 0; s < zpts.rows(); ++s) {
    for (std::size_t r = 0; r < mdim; ++r) {
      const double dz_r = zpts(s, r) - z_mean[r];
      for (std::size_t c = 0; c < mdim; ++c) {
        s_cov(r, c) += wc_[s] * dz_r * (zpts(s, c) - z_mean[c]);
      }
    }
    for (std::size_t r = 0; r < n; ++r) {
      const double dx_r = pts(s, r) - x_[r];
      for (std::size_t c = 0; c < mdim; ++c) {
        cross(r, c) += wc_[s] * dx_r * (zpts(s, c) - z_mean[c]);
      }
    }
  }
  symmetrize(s_cov);
  // K = cross * S^-1  computed as solve(S, cross^T)^T (S symmetric).
  const Matrix k = solve(s_cov, cross.transposed()).transposed();
  std::vector<double> innovation(mdim);
  if (residual_) {
    innovation = residual_(z, z_mean);
  } else {
    for (std::size_t c = 0; c < mdim; ++c) innovation[c] = z[c] - z_mean[c];
  }
  for (std::size_t r = 0; r < n; ++r) {
    double acc = 0.0;
    for (std::size_t c = 0; c < mdim; ++c) acc += k(r, c) * innovation[c];
    x_[r] += acc;
  }
  p_ = p_ - k * s_cov * k.transposed();
  symmetrize(p_);
}

}  // namespace esthera::estimation
