#include "prng/mt19937.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace esthera::prng {

void Mt19937::reseed(std::uint32_t seed) {
  state_[0] = seed;
  for (int i = 1; i < kN; ++i) {
    state_[i] = 1812433253u * (state_[i - 1] ^ (state_[i - 1] >> 30)) +
                static_cast<std::uint32_t>(i);
  }
  index_ = kN;
}

void Mt19937::twist() {
  for (int i = 0; i < kN; ++i) {
    const std::uint32_t y =
        (state_[i] & kUpperMask) | (state_[(i + 1) % kN] & kLowerMask);
    std::uint32_t next = state_[(i + kM) % kN] ^ (y >> 1);
    if (y & 1u) next ^= kMatrixA;
    state_[i] = next;
  }
  index_ = 0;
}

std::uint32_t Mt19937::operator()() {
  if (index_ >= kN) twist();
  std::uint32_t y = state_[index_++];
  y ^= y >> 11;
  y ^= (y << 7) & 0x9d2c5680u;
  y ^= (y << 15) & 0xefc60000u;
  y ^= y >> 18;
  return y;
}

void Mt19937::discard(unsigned long long n) {
  for (unsigned long long i = 0; i < n; ++i) (*this)();
}

void Mt19937::set_state(std::span<const std::uint32_t> words, std::uint32_t index) {
  if (words.size() != kStateWords) {
    throw std::invalid_argument("Mt19937::set_state: expected " +
                                std::to_string(kStateWords) + " words, got " +
                                std::to_string(words.size()));
  }
  if (index > kStateWords) {
    throw std::invalid_argument("Mt19937::set_state: index " +
                                std::to_string(index) + " out of range");
  }
  std::copy(words.begin(), words.end(), state_.begin());
  index_ = static_cast<int>(index);
}

}  // namespace esthera::prng
