// Minimal command-line / environment option parsing shared by the bench
// binaries. Every bench runs stand-alone with defaults sized for a laptop;
// `--full` (or ESTHERA_FULL=1) widens sweeps to the paper's full ranges,
// and individual flags override single knobs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace esthera::bench_util {

class Cli {
 public:
  /// Permissive constructor: accepts any `--flag` / `--flag value` /
  /// `--flag=value` mix. Throws std::invalid_argument on positional
  /// arguments. Prefer parse_or_exit in bench mains so a typo'd flag
  /// fails loudly instead of silently running with defaults.
  Cli(int argc, char** argv);

  /// Parses argv and rejects any flag not in `accepted`: prints the
  /// offending flag plus the sorted accepted-flag list to stderr and
  /// exits with status 2. Positional arguments get the same treatment
  /// instead of an exception. `--help` is always accepted: it prints the
  /// program name and the sorted accepted-flag list to stdout and exits 0.
  [[nodiscard]] static Cli parse_or_exit(int argc, char** argv,
                                         std::vector<std::string> accepted);

  /// True when `--name` was passed (as a bare flag or with a value).
  [[nodiscard]] bool has(const std::string& name) const;

  /// Value of `--name=value` or `--name value`; `fallback` when absent.
  [[nodiscard]] std::string get(const std::string& name,
                                const std::string& fallback) const;
  [[nodiscard]] std::size_t get_size(const std::string& name, std::size_t fallback) const;
  [[nodiscard]] double get_double(const std::string& name, double fallback) const;
  [[nodiscard]] std::uint64_t get_u64(const std::string& name,
                                      std::uint64_t fallback) const;

  /// True when the full paper-scale sweep was requested (--full or
  /// ESTHERA_FULL=1 in the environment).
  [[nodiscard]] bool full_scale() const;

  [[nodiscard]] const std::string& program() const { return program_; }

 private:
  struct Option {
    std::string name;
    std::string value;
    bool has_value = false;
  };

  [[nodiscard]] const Option* find(const std::string& name) const;

  std::string program_;
  std::vector<Option> options_;
};

}  // namespace esthera::bench_util
