#include "estimation/metrics.hpp"

#include <algorithm>
#include <cmath>

namespace esthera::estimation {

void ErrorAccumulator::add_step(std::span<const double> error) {
  double sq = 0.0;
  for (const double e : error) sq += e * e;
  const double norm = std::sqrt(sq);
  sum_sq_ += sq;
  sum_abs_ += norm;
  max_abs_ = std::max(max_abs_, norm);
  ++n_;
}

void ErrorAccumulator::add_scalar(double error) {
  const double a = std::abs(error);
  sum_sq_ += error * error;
  sum_abs_ += a;
  max_abs_ = std::max(max_abs_, a);
  ++n_;
}

double ErrorAccumulator::rmse() const {
  return n_ == 0 ? 0.0 : std::sqrt(sum_sq_ / static_cast<double>(n_));
}

double ErrorAccumulator::mae() const {
  return n_ == 0 ? 0.0 : sum_abs_ / static_cast<double>(n_);
}

double ErrorAccumulator::max_abs() const { return max_abs_; }

void ErrorAccumulator::reset() {
  sum_sq_ = 0.0;
  sum_abs_ = 0.0;
  max_abs_ = 0.0;
  n_ = 0;
}

void ErrorAccumulator::merge(const ErrorAccumulator& other) {
  sum_sq_ += other.sum_sq_;
  sum_abs_ += other.sum_abs_;
  max_abs_ = std::max(max_abs_, other.max_abs_);
  n_ += other.n_;
}

SeriesStats series_stats(std::span<const double> values) {
  SeriesStats s;
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values[0];
  s.max = values[0];
  for (const double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  if (values.size() > 1) {
    double var = 0.0;
    for (const double v : values) var += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(var / static_cast<double>(values.size() - 1));
  }
  return s;
}

}  // namespace esthera::estimation
