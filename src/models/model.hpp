// The model framework separating generic particle filtering from
// model-specific routines (a stated design goal of the paper: "new
// dynamical system models can be easily added").
//
// A model supplies the two probability kernels of Bayesian filtering:
//   * the state-transition sampler  x_k ~ p(x_k | x_{k-1}, u_k)
//   * the measurement likelihood    p(z_k | x_k), returned as a log value
// plus an initial-state sampler and a measurement sampler (used by the
// ground-truth simulator to produce synthetic sensor data). Samplers
// consume pre-generated N(0,1) variates (the paper generates randoms in a
// separate PRNG kernel, Sec. VI-A); the *_noise_dim() accessors report how
// many per invocation.
#pragma once

#include <concepts>
#include <cstddef>
#include <span>

namespace esthera::models {

/// Compile-time contract every dynamical-system model satisfies.
template <typename M>
concept SystemModel = requires(const M m, std::span<const typename M::Scalar> x_prev,
                               std::span<typename M::Scalar> x,
                               std::span<const typename M::Scalar> u,
                               std::span<const typename M::Scalar> z,
                               std::span<typename M::Scalar> z_out,
                               std::span<const typename M::Scalar> normals,
                               std::size_t step) {
  typename M::Scalar;
  { m.state_dim() } -> std::convertible_to<std::size_t>;
  { m.measurement_dim() } -> std::convertible_to<std::size_t>;
  { m.control_dim() } -> std::convertible_to<std::size_t>;
  { m.noise_dim() } -> std::convertible_to<std::size_t>;
  { m.init_noise_dim() } -> std::convertible_to<std::size_t>;
  { m.measurement_noise_dim() } -> std::convertible_to<std::size_t>;
  { m.sample_initial(x, normals) } -> std::same_as<void>;
  { m.sample_transition(x_prev, x, u, normals, step) } -> std::same_as<void>;
  { m.sample_measurement(x_prev, z_out, normals) } -> std::same_as<void>;
  { m.log_likelihood(x, z) } -> std::convertible_to<typename M::Scalar>;
};

}  // namespace esthera::models
