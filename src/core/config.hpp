// Distributed-filter configuration: exactly the parameter set of the
// paper's Table I (particles per sub-filter m, number of sub-filters N,
// exchange scheme X, particles per exchange t) plus the implementation
// choices the paper evaluates (resampling algorithm, resampling policy,
// estimate operator, PRNG core) and Table II's defaults.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

#include "device/backend.hpp"
#include "device/invariants.hpp"
#include "prng/mtgp_stream.hpp"
#include "resample/ess.hpp"
#include "topology/topology.hpp"

namespace esthera::telemetry {
struct Telemetry;
}

namespace esthera::monitor {
class HealthMonitor;
}

namespace esthera::core {

/// Which resampling algorithm a (sub-)filter runs (paper Sec. IV/VI-F).
enum class ResampleAlgorithm : std::uint8_t {
  kRws,         ///< Roulette Wheel Selection: prefix sum + binary search
  kVose,        ///< Vose's alias method (in-place device construction)
  kSystematic,  ///< low-variance comb (extension)
  kStratified,  ///< one draw per stratum (extension)
  kMetropolis,  ///< collective-free Metropolis chains (Murray; biased for finite B)
  kRejection,   ///< collective-free rejection against w_max (unbiased)
};

/// True for the collective-free resamplers (no scan, no sort, no alias
/// build inside the lock-step schedule) - the Murray family this library
/// adds on top of the paper's RWS/Vose pair.
[[nodiscard]] constexpr bool is_collective_free(ResampleAlgorithm a) {
  return a == ResampleAlgorithm::kMetropolis || a == ResampleAlgorithm::kRejection;
}

[[nodiscard]] const char* to_string(ResampleAlgorithm a);
[[nodiscard]] ResampleAlgorithm parse_resample_algorithm(const std::string& name);

/// How the global estimate is reduced from the particle set (Sec. IV: "we
/// select the particle with the highest global weight"; the weighted mean
/// is the usual alternative).
enum class EstimatorKind : std::uint8_t {
  kMaxWeight,
  kWeightedMean,
};

[[nodiscard]] const char* to_string(EstimatorKind e);
[[nodiscard]] EstimatorKind parse_estimator(const std::string& name);

/// Full distributed-filter configuration (Table I + implementation knobs).
struct FilterConfig {
  std::size_t particles_per_filter = 512;  ///< m; power of two (Table II GPU: 512)
  std::size_t num_filters = 1024;          ///< N (Table II: 1024)
  topology::ExchangeScheme scheme = topology::ExchangeScheme::kRing;  ///< X
  std::size_t exchange_particles = 1;      ///< t (Table II: 1)
  ResampleAlgorithm resample = ResampleAlgorithm::kRws;
  resample::ResamplePolicy policy = resample::ResamplePolicy::always();

  /// Chain length B of the Metropolis resampler (ignored by every other
  /// algorithm). 0 picks resample::metropolis_default_steps(m). Longer
  /// chains cost 2*B inline RNG draws per particle but shrink the
  /// resampling bias like (1 - 1/beta)^B; the HealthMonitor's
  /// `metropolis_bias` detector flags step counts below the recommended
  /// bound for the observed weight skew.
  std::size_t metropolis_steps = 0;
  EstimatorKind estimator = EstimatorKind::kMaxWeight;
  prng::Generator generator = prng::Generator::kMtgp;
  std::uint64_t seed = 42;
  std::size_t workers = 0;  ///< emulator worker threads; 0 = auto

  /// Lane-execution backend for the device kernels (sort network, scan
  /// sweeps, weighting, Box-Muller fills). kAuto resolves at filter
  /// construction via device::default_backend() (--backend override >
  /// ESTHERA_BACKEND > scalar). Every backend is bit-identical by contract
  /// - estimates and the deterministic work.* counters match the scalar
  /// reference exactly - so this knob trades speed only.
  device::Backend backend = device::Backend::kAuto;

  /// Gordon-style roughening: after each local resampling, every particle
  /// is jittered per dimension by N(0, (k * E_d * m^{-1/dim})^2) where E_d
  /// is the dimension's value range within the sub-filter. Restores the
  /// diversity that resampling duplicates destroy - the same failure mode
  /// behind the paper's All-to-All result, attacked from the other side.
  /// 0 disables roughening (the paper's configuration).
  double roughening_k = 0.0;

  /// Runtime opt-in for the esthera::debug invariant checker: validates the
  /// post-conditions of all six kernels after every launch and throws
  /// debug::InvariantViolation on the first breach. Defaults to on in
  /// builds compiled with -DESTHERA_CHECKED (CMake option ESTHERA_CHECKED);
  /// off otherwise, where every check site reduces to a branch-on-null.
  bool check_invariants = debug::kCheckedBuild;

  /// Observability sink (esthera::telemetry). Null (the default) disables
  /// every probe at the cost of one branch per site; when set, the filter
  /// records per-launch stage histograms ("stage.<key>"), one trace span
  /// per kernel launch, and per-step ESS / unique-parent / entropy /
  /// exchange-volume / RNG-high-water / pool series into the instance.
  /// Recording is passive: estimates are bit-identical either way. The
  /// pointer is borrowed; the Telemetry must outlive the filter.
  telemetry::Telemetry* telemetry = nullptr;

  /// Runtime health monitor (esthera::monitor), attached exactly like
  /// `telemetry`: null (the default) disables every probe at the cost of
  /// one branch per site; when set, the filter feeds the monitor the same
  /// per-step signals it records into telemetry (per-group ESS fraction,
  /// unique-parent fraction, normalized weight entropy, non-finite-weight
  /// counts, exchange volume) and the monitor raises structured,
  /// rate-limited events for collapse/starvation/anomaly conditions.
  /// Observation is passive: estimates are bit-identical either way.
  /// Borrowed pointer; the HealthMonitor must outlive the filter.
  monitor::HealthMonitor* monitor = nullptr;

  [[nodiscard]] std::size_t total_particles() const {
    return particles_per_filter * num_filters;
  }

  /// Throws std::invalid_argument when the configuration is inconsistent
  /// (m not a power of two, exchange volume >= m, ...).
  void validate() const;

  /// One-line human-readable summary for benchmark headers.
  [[nodiscard]] std::string summary() const;

  /// Table II defaults for the GPU-class device path (m=512, N=1024, Ring, t=1).
  [[nodiscard]] static FilterConfig table2_gpu_defaults();

  /// Table II defaults for the CPU-class path (m=64, same network).
  [[nodiscard]] static FilterConfig table2_cpu_defaults();
};

}  // namespace esthera::core
