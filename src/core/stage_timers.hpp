// Per-kernel stage timing, producing the runtime breakdowns of the paper's
// Fig 4. The six stages are exactly the six computational kernels of
// Sec. VI: PRNG, sampling+weighting, local sort, global estimate, particle
// exchange, and resampling.
//
// Accounting is per launch, not sum-only: each add() records one sample
// into a fixed-bucket telemetry::LatencyHistogram per stage, so seconds()
// and fraction() (views over the histograms) come with launch counts and
// p50/p95/p99 for free. fraction() and breakdown_string() are well-defined
// on a fresh or reset() timer (total() == 0): every fraction is 0 and the
// breakdown says so instead of printing six baseless 0.0% bars.
#pragma once

#include <array>
#include <chrono>
#include <cstddef>
#include <string>

#include "telemetry/histogram.hpp"

namespace esthera::core {

enum class Stage : std::size_t {
  kRand = 0,
  kSampling,
  kLocalSort,
  kGlobalEstimate,
  kExchange,
  kResampling,
};

inline constexpr std::size_t kStageCount = 6;

/// Per-stage launch latency histograms (wall-clock seconds).
class StageTimers {
 public:
  /// Records one launch of `stage` taking `seconds`.
  void add(Stage stage, double seconds) {
    histograms_[static_cast<std::size_t>(stage)].record(seconds);
  }

  /// Total wall-clock seconds spent in `stage` across all launches.
  [[nodiscard]] double seconds(Stage stage) const {
    return histograms_[static_cast<std::size_t>(stage)].sum();
  }

  /// Number of launches recorded for `stage` (the sample size behind
  /// every fraction/percentile of that stage).
  [[nodiscard]] std::size_t launches(Stage stage) const {
    return static_cast<std::size_t>(
        histograms_[static_cast<std::size_t>(stage)].count());
  }

  /// Full per-launch latency distribution of `stage`.
  [[nodiscard]] const telemetry::LatencyHistogram& histogram(Stage stage) const {
    return histograms_[static_cast<std::size_t>(stage)];
  }

  [[nodiscard]] double total() const;

  /// Fraction of the total spent in `stage`. Well-defined for an empty or
  /// reset timer: 0 when total() == 0.
  [[nodiscard]] double fraction(Stage stage) const;

  void reset() {
    for (auto& h : histograms_) h.reset();
  }

  [[nodiscard]] static const char* name(Stage stage);

  /// Machine-friendly stage key ("local_sort" instead of "local sort"),
  /// used for the registry histogram names "stage.<key>".
  [[nodiscard]] static const char* key(Stage stage);

  /// "rand 12.3% (20x) | sampling 20.1% (20x) | ..." -- one line per Fig 4
  /// bar, each share tagged with its launch count so a fraction is never
  /// reported without its sample size. "(no samples)" when total() == 0.
  [[nodiscard]] std::string breakdown_string() const;

 private:
  std::array<telemetry::LatencyHistogram, kStageCount> histograms_{};
};

/// RAII timer adding its scope's duration to a stage; optionally mirrors
/// the sample into a registry histogram (the filters pass their cached
/// "stage.<key>" histogram when telemetry is attached, nullptr otherwise).
class ScopedStageTimer {
 public:
  ScopedStageTimer(StageTimers& timers, Stage stage,
                   telemetry::LatencyHistogram* mirror = nullptr)
      : timers_(timers),
        stage_(stage),
        mirror_(mirror),
        start_(std::chrono::steady_clock::now()) {}

  ~ScopedStageTimer() {
    const auto end = std::chrono::steady_clock::now();
    const double seconds = std::chrono::duration<double>(end - start_).count();
    timers_.add(stage_, seconds);
    if (mirror_) mirror_->record(seconds);
  }

  ScopedStageTimer(const ScopedStageTimer&) = delete;
  ScopedStageTimer& operator=(const ScopedStageTimer&) = delete;

 private:
  StageTimers& timers_;
  Stage stage_;
  telemetry::LatencyHistogram* mirror_;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace esthera::core
