// Randomized-corruption tests for the ESCP checkpoint decoder: seed-driven
// byte flips, truncations, span scrambles, and checksum-re-signed header
// field mutations over valid blobs. The contract under ANY input is "throw
// CheckpointError or produce a self-consistent state" - never crash, never
// read out of bounds (the sanitizer jobs run this suite under ASan+UBSan),
// and never silently accept a blob that re-encodes differently.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <span>
#include <string>
#include <vector>

#include "core/distributed_pf.hpp"
#include "models/robot_arm.hpp"
#include "serve/checkpoint.hpp"
#include "serve/spill_store.hpp"
#include "sim/ground_truth.hpp"

namespace {

using namespace esthera;

using ArmModel = models::RobotArmModel<float>;
using ArmFilter = core::DistributedParticleFilter<ArmModel>;

/// A valid blob from a short filter run: the corpus every mutation starts
/// from.
std::vector<std::uint8_t> valid_blob() {
  sim::RobotArmScenario scenario;
  scenario.reset(5);
  core::FilterConfig cfg;
  cfg.particles_per_filter = 16;
  cfg.num_filters = 4;
  cfg.seed = 21;
  cfg.workers = 1;
  ArmFilter pf(scenario.make_model<float>(), cfg);
  std::vector<float> z, u;
  for (int k = 0; k < 4; ++k) {
    const auto step = scenario.advance();
    z.assign(step.z.begin(), step.z.end());
    u.assign(step.u.begin(), step.u.end());
    pf.step(z, u);
  }
  return serve::encode_checkpoint<float>(pf.export_state());
}

/// Same FNV-1a 64 the encoder uses, so field mutations can re-sign the
/// blob and reach the structural validation behind the checksum gate.
std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ull;
  }
  return h;
}

void resign(std::vector<std::uint8_t>& blob) {
  ASSERT_GE(blob.size(), 8u);
  const std::uint64_t sum = fnv1a64(blob.data(), blob.size() - 8);
  for (int b = 0; b < 8; ++b) {
    blob[blob.size() - 8 + static_cast<std::size_t>(b)] =
        static_cast<std::uint8_t>(sum >> (8 * b));
  }
}

/// Decodes a mutated blob. Any CheckpointError is a pass; a successful
/// decode must survive re-encode -> re-decode bit-identically (no silent
/// divergence). Returns true when the blob was rejected.
bool decode_must_reject_or_roundtrip(std::span<const std::uint8_t> blob) {
  try {
    const auto state = serve::decode_checkpoint<float>(blob);
    const auto re = serve::encode_checkpoint<float>(state);
    const auto again = serve::decode_checkpoint<float>(re);
    EXPECT_EQ(serve::encode_checkpoint<float>(again), re)
        << "accepted blob must be self-consistent";
    return false;
  } catch (const serve::CheckpointError&) {
    return true;  // structured refusal: the expected outcome
  }
  // Any other exception type (or a crash) fails the test by escaping.
}

TEST(ServeCheckpointFuzz, SingleByteFlipsAreAlwaysRejected) {
  const auto blob = valid_blob();
  std::mt19937_64 gen(0xf00d);
  for (int trial = 0; trial < 300; ++trial) {
    auto mutated = blob;
    const std::size_t pos = gen() % mutated.size();
    const auto mask = static_cast<std::uint8_t>(1u << (gen() % 8));
    mutated[pos] ^= mask;
    // The trailing checksum covers every byte, so any single flip - in the
    // header, payload, or the checksum itself - must be caught.
    EXPECT_TRUE(decode_must_reject_or_roundtrip(mutated))
        << "flip at byte " << pos << " mask " << int(mask) << " accepted";
  }
}

TEST(ServeCheckpointFuzz, RandomTruncationsNeverCrash) {
  const auto blob = valid_blob();
  std::mt19937_64 gen(0xbeef);
  for (int trial = 0; trial < 200; ++trial) {
    const std::size_t keep = gen() % (blob.size() + 1);
    const std::vector<std::uint8_t> cut(blob.begin(),
                                        blob.begin() + static_cast<long>(keep));
    if (keep == blob.size()) {
      EXPECT_FALSE(decode_must_reject_or_roundtrip(cut));
    } else {
      EXPECT_TRUE(decode_must_reject_or_roundtrip(cut)) << "keep=" << keep;
    }
  }
}

TEST(ServeCheckpointFuzz, ScrambledSpansAreAlwaysRejected) {
  const auto blob = valid_blob();
  std::mt19937_64 gen(0xcafe);
  for (int trial = 0; trial < 150; ++trial) {
    auto mutated = blob;
    const std::size_t start = gen() % mutated.size();
    const std::size_t len =
        std::min<std::size_t>(1 + gen() % 64, mutated.size() - start);
    bool changed = false;
    for (std::size_t i = 0; i < len; ++i) {
      const auto r = static_cast<std::uint8_t>(gen());
      changed = changed || r != mutated[start + i];
      mutated[start + i] = r;
    }
    if (!changed) continue;  // the scramble happened to be the identity
    EXPECT_TRUE(decode_must_reject_or_roundtrip(mutated))
        << "scramble [" << start << ", " << start + len << ") accepted";
  }
}

TEST(ServeCheckpointFuzz, ResignedHeaderFieldMutationsRejectOrRoundTrip) {
  // Overwrite one header field with a random value and re-sign the blob,
  // so the mutation reaches the structural checks behind the checksum:
  // extents that overrun the blob, zero dimensions, wrong scalar width,
  // unknown generator, foreign version. Adversarial extents (huge u64s)
  // must hit the overflow-checked size math, not a crash or a giant
  // allocation-and-read.
  const auto blob = valid_blob();
  std::mt19937_64 gen(0xd00dull);
  const std::size_t field_offsets[] = {4,  8,  12, 16, 24,
                                       32, 40, 48, 56};  // all header ints
  int accepted = 0;
  for (int trial = 0; trial < 400; ++trial) {
    auto mutated = blob;
    const std::size_t off =
        field_offsets[gen() % (sizeof(field_offsets) / sizeof(*field_offsets))];
    const std::size_t width = off < 16 ? 4 : 8;
    std::uint64_t value = gen();
    switch (gen() % 4) {
      case 0: value &= 0xff; break;              // small values
      case 1: value = ~std::uint64_t{0}; break;  // extent overflow bait
      case 2: value &= 0xffff; break;
      default: break;                            // full-range garbage
    }
    for (std::size_t b = 0; b < width; ++b) {
      mutated[off + b] = static_cast<std::uint8_t>(value >> (8 * b));
    }
    resign(mutated);
    if (!decode_must_reject_or_roundtrip(mutated)) ++accepted;
  }
  // A mutation may legitimately be accepted (e.g. rewriting the step index
  // or a field with its original value), but structural garbage dominates:
  // most trials must be structured refusals.
  EXPECT_LT(accepted, 400 / 2);
}

TEST(ServeCheckpointFuzz, TrailingGarbageIsRejectedEvenWhenResigned) {
  const auto blob = valid_blob();
  std::mt19937_64 gen(0xa11ce);
  for (int trial = 0; trial < 50; ++trial) {
    auto mutated = blob;
    const std::size_t extra = 1 + gen() % 32;
    for (std::size_t i = 0; i < extra; ++i) {
      mutated.push_back(static_cast<std::uint8_t>(gen()));
    }
    EXPECT_TRUE(decode_must_reject_or_roundtrip(mutated));
    auto resigned = mutated;
    resign(resigned);
    // Even with a valid checksum over the padded blob the declared extents
    // no longer reach the end: trailing garbage is a structural refusal.
    EXPECT_TRUE(decode_must_reject_or_roundtrip(resigned));
  }
}

TEST(ServeCheckpointFuzz, EmptyAndTinyBlobsAreRejected) {
  for (const std::size_t n : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                              std::size_t{63}}) {
    const std::vector<std::uint8_t> tiny(n, 0x45);
    EXPECT_TRUE(decode_must_reject_or_roundtrip(tiny)) << "size " << n;
    EXPECT_THROW((void)serve::checkpoint_version(tiny), serve::CheckpointError);
  }
}

// The spill store moves ESCP blobs to disk and back; a crashed writer or a
// bit-rotted disk hands the decoder whatever survived. Run the same
// byte-mutation harness through a file-backed SpillStore round trip: any
// corruption of the spilled file must surface as a structured
// CheckpointError after take(), never a crash -- and the decoder must not
// care that the bytes passed through a file.
TEST(ServeCheckpointFuzz, SpillFileMutationsRejectOrRoundTrip) {
  const auto blob = valid_blob();
  char dir_template[] = "/tmp/esthera_spill_fuzz_XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  serve::SpillStore::Config cfg;
  cfg.dir = dir_template;
  serve::SpillStore store(cfg);
  std::mt19937_64 gen(0x5b111);
  for (int trial = 0; trial < 150; ++trial) {
    ASSERT_TRUE(store.put(1, blob));
    const std::string path = store.path_for(1);
    // Corrupt the file in place: flip bytes, truncate, or append garbage.
    switch (gen() % 3) {
      case 0: {  // byte flips
        std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
        ASSERT_TRUE(f.good());
        const std::size_t pos = gen() % blob.size();
        f.seekg(static_cast<std::streamoff>(pos));
        char byte = 0;
        f.read(&byte, 1);
        byte = static_cast<char>(byte ^ (1u << (gen() % 8)));
        f.seekp(static_cast<std::streamoff>(pos));
        f.write(&byte, 1);
        break;
      }
      case 1: {  // truncation (store's size bookkeeping now disagrees)
        const std::size_t keep = gen() % blob.size();
        std::vector<char> head(keep);
        {
          std::ifstream in(path, std::ios::binary);
          in.read(head.data(), static_cast<std::streamsize>(keep));
        }
        std::ofstream out(path, std::ios::binary | std::ios::trunc);
        out.write(head.data(), static_cast<std::streamsize>(keep));
        break;
      }
      default: {  // trailing garbage (take() reads only the recorded size)
        std::ofstream f(path, std::ios::binary | std::ios::app);
        for (std::size_t i = 0, n = 1 + gen() % 32; i < n; ++i) {
          const char c = static_cast<char>(gen());
          f.write(&c, 1);
        }
        break;
      }
    }
    try {
      const auto read_back = store.take(1);
      // take() succeeded: the decoder is the last line of defense.
      if (read_back == blob) {
        EXPECT_FALSE(decode_must_reject_or_roundtrip(read_back));
      } else {
        EXPECT_TRUE(decode_must_reject_or_roundtrip(read_back));
      }
    } catch (const serve::CheckpointError&) {
      // Structured refusal from the store itself (short read): the id and
      // file stay put for postmortem; clean up for the next trial.
      store.erase(1);
    }
  }
  store.erase(1);
  ::rmdir(dir_template);
}

}  // namespace
