// Bearings-only target motion analysis: a constant-velocity target observed
// through nothing but the bearing from a (maneuvering) own-ship. The
// canonical hard tracking benchmark - range is unobservable until the
// observer maneuvers, so the posterior is banana-shaped and strongly
// non-Gaussian, the regime the paper's introduction motivates particle
// filters with (radar/sonar tracking).
//
// State   x = (px, py, vx, vy)       target position/velocity
// Control u = (ox, oy)               own-ship position this step
// Meas.   z = atan2(py - oy, px - ox) + noise
#pragma once

#include <cassert>
#include <cmath>
#include <cstddef>
#include <numbers>
#include <span>
#include <vector>

namespace esthera::models {

template <typename T>
struct BearingsOnlyParams {
  T dt = T(1);                 ///< time step [s]
  T sigma_accel = T(0.005);    ///< process acceleration noise [unit/s^2]
  T meas_sigma = T(0.02);      ///< bearing noise [rad]
  std::vector<T> init_mean = {T(10), T(10), T(-0.2), T(0)};
  std::vector<T> init_std = {T(4), T(4), T(0.2), T(0.2)};
};

template <typename T>
class BearingsOnlyModel {
 public:
  using Scalar = T;

  explicit BearingsOnlyModel(BearingsOnlyParams<T> params = {})
      : p_(std::move(params)) {
    assert(p_.init_mean.size() == 4 && p_.init_std.size() == 4);
  }

  [[nodiscard]] const BearingsOnlyParams<T>& params() const { return p_; }
  [[nodiscard]] std::size_t state_dim() const { return 4; }
  [[nodiscard]] std::size_t measurement_dim() const { return 1; }
  [[nodiscard]] std::size_t control_dim() const { return 2; }
  [[nodiscard]] std::size_t noise_dim() const { return 2; }  ///< accel (x, y)
  [[nodiscard]] std::size_t init_noise_dim() const { return 4; }
  [[nodiscard]] std::size_t measurement_noise_dim() const { return 1; }

  void sample_initial(std::span<T> x, std::span<const T> normals) const {
    assert(x.size() == 4 && normals.size() >= 4);
    for (std::size_t i = 0; i < 4; ++i) {
      x[i] = p_.init_mean[i] + p_.init_std[i] * normals[i];
    }
  }

  /// Nearly-constant-velocity dynamics driven by white acceleration.
  void sample_transition(std::span<const T> x_prev, std::span<T> x,
                         std::span<const T> /*u*/, std::span<const T> normals,
                         std::size_t /*step*/) const {
    assert(x_prev.size() == 4 && x.size() == 4 && normals.size() >= 2);
    const T h = p_.dt;
    const T ax = p_.sigma_accel * normals[0];
    const T ay = p_.sigma_accel * normals[1];
    x[0] = x_prev[0] + x_prev[2] * h + T(0.5) * ax * h * h;
    x[1] = x_prev[1] + x_prev[3] * h + T(0.5) * ay * h * h;
    x[2] = x_prev[2] + ax * h;
    x[3] = x_prev[3] + ay * h;
  }

  /// True bearing from the observer at (u[0], u[1]).
  [[nodiscard]] T bearing(std::span<const T> x, std::span<const T> u) const {
    const T ox = u.size() > 0 ? u[0] : T(0);
    const T oy = u.size() > 1 ? u[1] : T(0);
    return std::atan2(x[1] - oy, x[0] - ox);
  }

  void sample_measurement(std::span<const T> x, std::span<T> z,
                          std::span<const T> normals) const {
    assert(z.size() == 1 && !normals.empty());
    z[0] = wrap(bearing(x, observer_) + p_.meas_sigma * normals[0]);
  }

  /// The measurement depends on where the own-ship is; the filter/simulator
  /// sets it each step before weighting (z itself carries no observer info).
  void set_observer(T ox, T oy) { observer_ = {ox, oy}; }
  [[nodiscard]] std::span<const T> observer() const { return observer_; }

  [[nodiscard]] T log_likelihood(std::span<const T> x, std::span<const T> z) const {
    assert(z.size() == 1);
    const T e = wrap(z[0] - bearing(x, observer_));
    return -T(0.5) * e * e / (p_.meas_sigma * p_.meas_sigma);
  }

  static T wrap(T a) {
    constexpr T pi = std::numbers::pi_v<T>;
    while (a > pi) a -= 2 * pi;
    while (a <= -pi) a += 2 * pi;
    return a;
  }

 private:
  BearingsOnlyParams<T> p_;
  std::vector<T> observer_ = {T(0), T(0)};
};

}  // namespace esthera::models
