// Conversions from uniform bits to floating-point variates: U(0,1) and the
// Box-Muller transform to N(0,1), as used by the paper's PRNG kernel
// (MTGP + Box-Muller, Sec. VI-A).
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <numbers>
#include <span>
#include <utility>

namespace esthera::prng {

/// Maps 32 uniform bits to a float in [0, 1) with 24-bit resolution.
inline float u01f(std::uint32_t bits) {
  return static_cast<float>(bits >> 8) * 0x1.0p-24f;
}

/// Maps 32 uniform bits to a double in [0, 1) (32-bit resolution; enough for
/// resampling draws, the reference filter uses u01d64 below for sampling).
inline double u01d(std::uint32_t bits) { return bits * 0x1.0p-32; }

/// Maps 64 uniform bits to a double in [0, 1) with 53-bit resolution.
inline double u01d64(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

template <typename T>
inline T u01(std::uint32_t bits) {
  if constexpr (sizeof(T) == sizeof(float)) {
    return u01f(bits);
  } else {
    return static_cast<T>(u01d(bits));
  }
}

/// Draws U(0,1) of type T from a 32-bit generator.
template <typename T, typename Gen>
inline T uniform01(Gen& gen) {
  return u01<T>(gen());
}

/// Box-Muller: maps two U(0,1) variates to two independent N(0,1) variates.
/// The first input is nudged away from 0 so log() stays finite.
template <typename T>
inline std::pair<T, T> box_muller(T u1, T u2) {
  constexpr T kTiny = sizeof(T) == sizeof(float) ? T(1.1754944e-38) : T(2.2250738585072014e-308);
  if (u1 < kTiny) u1 = kTiny;
  const T r = std::sqrt(T(-2) * std::log(u1));
  const T theta = T(2) * std::numbers::pi_v<T> * u2;
  return {r * std::cos(theta), r * std::sin(theta)};
}

/// Batched Box-Muller over `draws`, a staged run of U(0,1) variates in
/// generator draw order. Pair p consumes draws[2p] and draws[2p+1] and
/// produces out[2p], out[2p+1] (an odd-sized `out` still consumes a full
/// pair and discards z1, matching the sized PRNG-kernel budget).
///
/// Draw-pairing contract: the historical fill evaluated
/// `box_muller(uniform01(gen), uniform01(gen))`, whose argument order is
/// unspecified; GCC evaluates right-to-left, so the *first* draw of each
/// pair became the angle input u2 and the *second* the radius input u1.
/// This helper pins that pairing explicitly - box_muller(draws[2p+1],
/// draws[2p]) - so staged fills reproduce the seed sequences bit-for-bit
/// on any compiler.
template <typename T>
inline void box_muller_fill(std::span<const T> draws, std::span<T> out) {
  const std::size_t pairs = (out.size() + 1) / 2;
  assert(draws.size() >= 2 * pairs);
  for (std::size_t p = 0; p + 1 < pairs; ++p) {
    const auto [z0, z1] = box_muller(draws[2 * p + 1], draws[2 * p]);
    out[2 * p] = z0;
    out[2 * p + 1] = z1;
  }
  if (pairs > 0) {
    const std::size_t p = pairs - 1;
    const auto [z0, z1] = box_muller(draws[2 * p + 1], draws[2 * p]);
    out[2 * p] = z0;
    if (2 * p + 1 < out.size()) out[2 * p + 1] = z1;
  }
}

/// Lane-batched variant of box_muller_fill: identical draw pairing over a
/// pre-staged contiguous draw array, evaluated pair-at-a-time with no
/// interleaved generator stepping. The transform calls the same scalar
/// libm routines (no fast-math relaxation, no vector-math substitution),
/// so outputs stay bit-identical to the scalar fill; a `#pragma omp simd`
/// here measures *slower* because the transcendental calls serialize the
/// lanes anyway, so the batching win is the staging itself (generator
/// stepping decoupled from the transform's load/store stream).
template <typename T>
inline void box_muller_fill_simd(std::span<const T> draws, std::span<T> out) {
  const std::size_t pairs = out.size() / 2;
  assert(draws.size() >= 2 * ((out.size() + 1) / 2));
  const T* const d = draws.data();
  T* const o = out.data();
  for (std::size_t p = 0; p < pairs; ++p) {
    const auto [z0, z1] = box_muller(d[2 * p + 1], d[2 * p]);
    o[2 * p] = z0;
    o[2 * p + 1] = z1;
  }
  if (out.size() % 2 == 1) {
    const auto [z0, z1] = box_muller(d[out.size()], d[out.size() - 1]);
    o[out.size() - 1] = z0;
    (void)z1;
  }
}

/// Stateful N(0,1) source over any 32-bit generator; caches the second
/// Box-Muller output so no variate is wasted.
template <typename T, typename Gen>
class NormalSource {
 public:
  explicit NormalSource(Gen& gen) : gen_(gen) {}

  T operator()() {
    if (has_spare_) {
      has_spare_ = false;
      return spare_;
    }
    // Draw order pinned to box_muller_fill's contract: the first draw is
    // the angle input u2, the second the radius input u1 (historically
    // GCC's right-to-left argument evaluation; now explicit so the seed
    // sequences are compiler-independent).
    const T u2 = uniform01<T>(gen_);
    const T u1 = uniform01<T>(gen_);
    const auto [z0, z1] = box_muller(u1, u2);
    spare_ = z1;
    has_spare_ = true;
    return z0;
  }

 private:
  Gen& gen_;
  T spare_{};
  bool has_spare_ = false;
};

}  // namespace esthera::prng
