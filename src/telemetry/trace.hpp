// TraceRecorder: captures every device kernel launch (and each filter
// round, and -- through serve -- each request lifecycle stage) as a timed
// span and exports Chrome Trace Event JSON, loadable in chrome://tracing
// and Perfetto (ui.perfetto.dev). Spans carry the stage name, the
// launched group range, the filter step, and (when a TraceContext is
// propagated) the request's trace id, span parenting, session, and
// tenant -- so one view shows request -> queue_wait -> batch ->
// session_step -> {prng, weigh, sort, estimate, exchange, resample} as a
// single parented tree.
//
// Capture goes to per-thread buffers (registered once per thread, merged
// on export), so the hot path never contends on a recorder-wide mutex.
// The recorder is bounded: past `max_spans` accepted spans, further
// record() calls are counted in dropped_spans() and discarded, keeping
// long serve runs at a fixed memory ceiling.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/context.hpp"

namespace esthera::telemetry {

/// One completed span on the host timeline.
struct TraceSpan {
  std::string name;          ///< kernel / stage name ("sampling+weighting", ...)
  double ts_us = 0.0;        ///< start, microseconds since recorder epoch
  double dur_us = 0.0;       ///< duration, microseconds
  std::uint64_t step = 0;    ///< filter round the launch belongs to
  std::size_t group_begin = 0;  ///< launched work-group range [begin, end)
  std::size_t group_end = 0;
  std::uint32_t track = 0;   ///< Chrome "tid": one track per filter/session
  // Request-tree identity (all 0 outside a traced request):
  std::uint64_t trace_id = 0;        ///< whole-request id
  std::uint64_t span_id = 0;         ///< this span's id
  std::uint64_t parent_span_id = 0;  ///< 0 = tree root
  std::uint64_t session = 0;         ///< serve session id
  std::uint64_t tenant = 0;          ///< serve tenant tag
  bool thrown = false;  ///< the traced region exited by exception
  /// Request deadline (serve's urgency scalar); exported only when finite
  /// (NaN = untagged, +inf = submitted with kNoDeadline).
  double deadline = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t seq = 0;  ///< recorder-global record order (not exported)
};

/// Collects spans (thread-safe, per-thread buffered) and serializes them.
/// The epoch is fixed at construction so spans from multiple filters
/// sharing one recorder land on a common timeline.
class TraceRecorder {
 public:
  using Clock = std::chrono::steady_clock;

  /// Default span capacity; beyond it spans are dropped (and counted).
  static constexpr std::size_t kDefaultMaxSpans = std::size_t{1} << 20;

  explicit TraceRecorder(std::size_t max_spans = kDefaultMaxSpans);
  ~TraceRecorder();
  TraceRecorder(const TraceRecorder&) = delete;
  TraceRecorder& operator=(const TraceRecorder&) = delete;

  void record(std::string name, Clock::time_point start, Clock::time_point end,
              std::size_t group_begin, std::size_t group_end,
              std::uint64_t step, std::uint32_t track = 0);

  /// Full-control variant: the caller fills every TraceSpan field except
  /// seq (assigned here). Used by serve to stamp ts/dur consistent with
  /// the latency it records into histograms.
  void record_span(TraceSpan span);

  /// Microseconds of `tp` on this recorder's timeline (for callers
  /// composing TraceSpans by hand).
  [[nodiscard]] double us_since_epoch(Clock::time_point tp) const {
    return std::chrono::duration<double, std::micro>(tp - epoch_).count();
  }

  [[nodiscard]] std::size_t span_count() const;
  /// Spans record() calls discarded after the max_spans cap was reached.
  [[nodiscard]] std::uint64_t dropped_spans() const {
    return dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t max_spans() const { return max_spans_; }

  /// Snapshot copy of the recorded spans in record order (safe against
  /// concurrent record(); merges the per-thread buffers).
  [[nodiscard]] std::vector<TraceSpan> spans() const;

  /// Chrome Trace Event JSON: {"displayTimeUnit":"ms","traceEvents":[...]}
  /// with one complete ("ph":"X") event per span.
  void write_chrome_trace(std::ostream& os) const;

  void clear();

 private:
  struct ThreadBuffer {
    std::mutex mutex;  // uncontended: one writer thread, readers only on export
    std::vector<TraceSpan> spans;
  };

  ThreadBuffer& local_buffer();

  std::uint64_t id_;  ///< process-unique, keys the thread-local buffer cache
  Clock::time_point epoch_;
  std::size_t max_spans_;
  std::atomic<std::uint64_t> accepted_{0};  ///< spans admitted under the cap
  std::atomic<std::uint64_t> dropped_{0};
  std::atomic<std::uint64_t> next_seq_{0};
  mutable std::mutex buffers_mutex_;  ///< guards buffers_ (registration/export)
  std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/// RAII span: records [construction, destruction) into `recorder`; a null
/// recorder with no flight-carrying context makes the whole object a
/// no-op (the telemetry-off fast path -- no clock read, no lock). The
/// span is recorded even when the traced region exits by exception (the
/// span is then flagged `thrown`); the destructor never throws.
///
/// `ctx`, when given, is the PARENT context: the span joins ctx's trace,
/// parents under ctx->span_id, derives its own id from (parent, name,
/// step), inherits session/tenant/track tags, and mirrors begin/end
/// events into ctx->flight when set. child_context() then denotes this
/// span, for nesting the next level down.
class ScopedSpan {
 public:
  ScopedSpan(TraceRecorder* recorder, const char* name, std::size_t group_begin,
             std::size_t group_end, std::uint64_t step, std::uint32_t track = 0,
             const TraceContext* ctx = nullptr);

  ~ScopedSpan() noexcept;

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  /// Context denoting this span (for parenting children under it).
  /// Zero-id (inert) when no parent context was given.
  [[nodiscard]] const TraceContext& child_context() const { return self_; }

 private:
  TraceRecorder* recorder_;
  const char* name_;
  std::size_t group_begin_;
  std::size_t group_end_;
  std::uint64_t step_;
  std::uint32_t track_;
  TraceContext self_{};  ///< this span's identity (inert without ctx)
  std::uint64_t parent_span_id_ = 0;
  int uncaught_on_entry_ = 0;
  TraceRecorder::Clock::time_point start_{};
};

}  // namespace esthera::telemetry
